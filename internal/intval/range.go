package intval

import "fmt"

// RangeKind classifies a Range.
type RangeKind int

const (
	// RangeEmpty is the lattice top: no indices known null.
	RangeEmpty RangeKind = iota
	// RangeFull is a closed interval [Lo..Hi]. It is created only at
	// array allocation, where Hi is exactly length-1 (paper §3.2), an
	// invariant Contract and Merge preserve by never producing new Full
	// ranges.
	RangeFull
	// RangeLow is the half-open range [Lo..]: all indices ≥ Lo.
	RangeLow
	// RangeHigh is the half-open range [..Hi]: all indices ≤ Hi.
	RangeHigh
)

// Range is a subrange of an array's valid indices known to contain null —
// the NR map's range type (paper §3.2).
type Range struct {
	Kind   RangeKind
	Lo, Hi IntVal
}

// Empty returns the no-information range.
func Empty() Range { return Range{Kind: RangeEmpty} }

// Full returns [lo..hi]. Callers must only use it at allocation with
// hi = length-1.
func Full(lo, hi IntVal) Range {
	if lo.IsTop() || hi.IsTop() {
		return Empty()
	}
	return Range{Kind: RangeFull, Lo: lo, Hi: hi}
}

// Low returns [lo..].
func Low(lo IntVal) Range {
	if lo.IsTop() {
		return Empty()
	}
	return Range{Kind: RangeLow, Lo: lo}
}

// High returns [..hi].
func High(hi IntVal) Range {
	if hi.IsTop() {
		return Empty()
	}
	return Range{Kind: RangeHigh, Hi: hi}
}

// IsEmpty reports whether no indices are known null.
func (r Range) IsEmpty() bool { return r.Kind == RangeEmpty }

// Equal reports structural equality.
func (r Range) Equal(s Range) bool {
	if r.Kind != s.Kind {
		return false
	}
	switch r.Kind {
	case RangeEmpty:
		return true
	case RangeFull:
		return r.Lo.Equal(s.Lo) && r.Hi.Equal(s.Hi)
	case RangeLow:
		return r.Lo.Equal(s.Lo)
	default:
		return r.Hi.Equal(s.Hi)
	}
}

// Covers reports whether a store at index ind is provably inside the null
// range. Because Contract only ever advances a bound past an end store,
// the provable cases are exactly stores at the ends — which keeps the
// overflow argument of §3.6 intact (out-of-order indices immediately
// collapse the range).
func (r Range) Covers(ind IntVal) bool {
	if ind.IsTop() {
		return false
	}
	switch r.Kind {
	case RangeFull:
		return ind.Equal(r.Lo) || ind.Equal(r.Hi)
	case RangeLow:
		return ind.Equal(r.Lo)
	case RangeHigh:
		return ind.Equal(r.Hi)
	default:
		return false
	}
}

// Contract shrinks the range after a store at index ind (paper §3.3): a
// store at the low end advances the low bound, a store at the high end
// retreats the high bound, and any store the analysis cannot place at an
// end collapses the range to Empty.
func (r Range) Contract(ind IntVal) Range {
	if r.Kind == RangeEmpty {
		return r
	}
	if ind.IsTop() {
		return Empty()
	}
	one := Const(1)
	switch r.Kind {
	case RangeFull:
		switch {
		case ind.Equal(r.Lo):
			// Hi is length-1, so [Lo+1..Hi] is the half-open tail.
			return Low(r.Lo.Add(one))
		case ind.Equal(r.Hi):
			return High(r.Hi.Sub(one))
		default:
			return Empty()
		}
	case RangeLow:
		if ind.Equal(r.Lo) {
			return Low(r.Lo.Add(one))
		}
		return Empty()
	default: // RangeHigh
		if ind.Equal(r.Hi) {
			return High(r.Hi.Sub(one))
		}
		return Empty()
	}
}

// MergeRanges joins the null ranges of two states, merging bound IntVals
// through the shared stride context. An index is known null after the
// merge only if both states guarantee it, so mismatched shapes or
// unmergeable bounds collapse to Empty. Full merges with a half-open range
// to the half-open shape (sound because a Full range always reaches its
// array's end, §3.5).
func MergeRanges(r1, r2 Range, ctx *MergeCtx) Range {
	if r1.Kind == RangeEmpty || r2.Kind == RangeEmpty {
		return Empty()
	}
	mergeLo := func(a, b IntVal) Range { return Low(Merge(a, b, ctx)) }
	mergeHi := func(a, b IntVal) Range { return High(Merge(a, b, ctx)) }
	switch {
	case r1.Kind == RangeFull && r2.Kind == RangeFull:
		lo := Merge(r1.Lo, r2.Lo, ctx)
		hi := Merge(r1.Hi, r2.Hi, ctx)
		return Full(lo, hi)
	case r1.Kind == RangeFull && r2.Kind == RangeLow:
		return mergeLo(r1.Lo, r2.Lo)
	case r1.Kind == RangeLow && r2.Kind == RangeFull:
		return mergeLo(r1.Lo, r2.Lo)
	case r1.Kind == RangeLow && r2.Kind == RangeLow:
		return mergeLo(r1.Lo, r2.Lo)
	case r1.Kind == RangeFull && r2.Kind == RangeHigh:
		return mergeHi(r1.Hi, r2.Hi)
	case r1.Kind == RangeHigh && r2.Kind == RangeFull:
		return mergeHi(r1.Hi, r2.Hi)
	case r1.Kind == RangeHigh && r2.Kind == RangeHigh:
		return mergeHi(r1.Hi, r2.Hi)
	default:
		// Low vs High: incompatible directions.
		return Empty()
	}
}

// String renders the range for diagnostics.
func (r Range) String() string {
	switch r.Kind {
	case RangeEmpty:
		return "[]"
	case RangeFull:
		return fmt.Sprintf("[%s..%s]", r.Lo, r.Hi)
	case RangeLow:
		return fmt.Sprintf("[%s..]", r.Lo)
	default:
		return fmt.Sprintf("[..%s]", r.Hi)
	}
}
