package intval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRangeConstructorsNormalizeTop(t *testing.T) {
	if !Full(Top, Const(3)).IsEmpty() || !Full(Const(0), Top).IsEmpty() {
		t.Error("Full with top bound must be Empty")
	}
	if !Low(Top).IsEmpty() || !High(Top).IsEmpty() {
		t.Error("half-open with top bound must be Empty")
	}
}

func TestContractAtLowEnd(t *testing.T) {
	var n Namer
	c := OfConstU(n.FreshConst())
	r := Full(Const(0), c.MulK(2).Sub(Const(1))) // [0..2c-1], the expand example
	r1 := r.Contract(Const(0))
	if r1.Kind != RangeLow || !r1.Lo.Equal(Const(1)) {
		t.Errorf("contract at 0 = %s, want [1..]", r1)
	}
	r2 := r1.Contract(Const(1))
	if r2.Kind != RangeLow || !r2.Lo.Equal(Const(2)) {
		t.Errorf("second contract = %s, want [2..]", r2)
	}
}

func TestContractAtHighEnd(t *testing.T) {
	r := Full(Const(0), Const(9))
	r1 := r.Contract(Const(9))
	if r1.Kind != RangeHigh || !r1.Hi.Equal(Const(8)) {
		t.Errorf("contract at hi = %s, want [..8]", r1)
	}
	r2 := r1.Contract(Const(8))
	if r2.Kind != RangeHigh || !r2.Hi.Equal(Const(7)) {
		t.Errorf("downward contract = %s, want [..7]", r2)
	}
}

func TestContractOutOfOrderCollapses(t *testing.T) {
	r := Full(Const(0), Const(9))
	if got := r.Contract(Const(5)); !got.IsEmpty() {
		t.Errorf("middle store should collapse, got %s", got)
	}
	low := Low(Const(3))
	if got := low.Contract(Const(7)); !got.IsEmpty() {
		t.Errorf("skipping ahead should collapse, got %s", got)
	}
	if got := low.Contract(Top); !got.IsEmpty() {
		t.Errorf("unknown index should collapse, got %s", got)
	}
	if got := Empty().Contract(Const(0)); !got.IsEmpty() {
		t.Error("empty stays empty")
	}
}

func TestCovers(t *testing.T) {
	var n Namer
	v := OfVar(n.FreshVar())
	cases := []struct {
		r    Range
		ind  IntVal
		want bool
	}{
		{Full(Const(0), Const(9)), Const(0), true},
		{Full(Const(0), Const(9)), Const(9), true},
		{Full(Const(0), Const(9)), Const(5), false},
		{Low(v), v, true},
		{Low(v), v.Add(Const(1)), false},
		{High(v), v, true},
		{High(v), Const(0), false},
		{Empty(), Const(0), false},
		{Low(Const(0)), Top, false},
	}
	for i, c := range cases {
		if got := c.r.Covers(c.ind); got != c.want {
			t.Errorf("case %d: %s covers %s = %v, want %v", i, c.r, c.ind, got, c.want)
		}
	}
}

func TestMergeRangesPaperWalkthrough(t *testing.T) {
	// §3.5: loop-head merge of the expand example. State 1 (first visit):
	// i=0, NR=[0..2c0-1]. State 2 (after one iteration): i=1, NR=[1..].
	var n Namer
	c0 := OfConstU(n.FreshConst())
	full := Full(Const(0), c0.MulK(2).Sub(Const(1)))
	tail := Low(Const(1))

	ctx := NewMergeCtx(&n)
	mi := Merge(Const(0), Const(1), ctx) // ρ(i) components
	if !mi.HasVar() {
		t.Fatalf("index merge = %s", mi)
	}
	mr := MergeRanges(full, tail, ctx)
	if mr.Kind != RangeLow {
		t.Fatalf("range merge = %s, want half-open low", mr)
	}
	if !mr.Lo.Equal(mi) {
		t.Errorf("low bound %s should equal the merged index %s", mr.Lo, mi)
	}

	// Validation iteration: i = v vs v+1; NR = [v..] vs [v+1..].
	ctx2 := NewMergeCtx(&n)
	mi2 := Merge(mi, mi.Add(Const(1)), ctx2)
	if !mi2.Equal(mi) {
		t.Fatalf("validation index merge = %s, want %s", mi2, mi)
	}
	mr2 := MergeRanges(Low(mi), Low(mi.Add(Const(1))), ctx2)
	if mr2.Kind != RangeLow || !mr2.Lo.Equal(mi) {
		t.Errorf("validation range merge = %s, want [%s..]", mr2, mi)
	}
}

func TestMergeRangesShapes(t *testing.T) {
	var n Namer
	ctx := NewMergeCtx(&n)
	if got := MergeRanges(Empty(), Low(Const(0)), ctx); !got.IsEmpty() {
		t.Error("empty absorbs")
	}
	if got := MergeRanges(Low(Const(0)), High(Const(3)), ctx); !got.IsEmpty() {
		t.Error("low/high mix collapses")
	}
	got := MergeRanges(High(Const(5)), High(Const(5)), ctx)
	if got.Kind != RangeHigh || !got.Hi.Equal(Const(5)) {
		t.Errorf("high/high = %s", got)
	}
	f := MergeRanges(Full(Const(0), Const(7)), Full(Const(0), Const(7)), ctx)
	if f.Kind != RangeFull {
		t.Errorf("full/full equal = %s", f)
	}
}

func TestMergeRangesFullWithHigh(t *testing.T) {
	var n Namer
	ctx := NewMergeCtx(&n)
	got := MergeRanges(Full(Const(0), Const(9)), High(Const(8)), ctx)
	if got.Kind != RangeHigh {
		t.Fatalf("full/high = %s", got)
	}
	if !got.Hi.HasVar() {
		t.Errorf("bounds 9 and 8 should merge to a stride variable, got %s", got.Hi)
	}
}

func TestQuickContractMonotone(t *testing.T) {
	// Contract never grows the set of provably-covered constant indices:
	// any index covered after contraction was covered before or is
	// adjacent to one that was (and the contracted index is never
	// covered afterwards).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lo := int64(r.Intn(5))
		hi := lo + int64(r.Intn(10))
		rng := Full(Const(lo), Const(hi))
		ind := Const(lo + int64(r.Intn(int(hi-lo+2))) - 1)
		after := rng.Contract(ind)
		return !after.Covers(ind)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeRangesCommutativeShape(t *testing.T) {
	// Merging in either order yields the same shape (bounds may use
	// fresh variables, so compare kinds).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() Range {
			switch r.Intn(4) {
			case 0:
				return Empty()
			case 1:
				lo := int64(r.Intn(4))
				return Full(Const(lo), Const(lo+int64(r.Intn(6))))
			case 2:
				return Low(Const(int64(r.Intn(4))))
			default:
				return High(Const(int64(r.Intn(6))))
			}
		}
		a, b := mk(), mk()
		var n1, n2 Namer
		x := MergeRanges(a, b, NewMergeCtx(&n1))
		y := MergeRanges(b, a, NewMergeCtx(&n2))
		return x.Kind == y.Kind
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeRangesIdempotent(t *testing.T) {
	f := func(lo8, w8 uint8, kind uint8) bool {
		lo := int64(lo8 % 8)
		hi := lo + int64(w8%8)
		var rng Range
		switch kind % 4 {
		case 0:
			rng = Empty()
		case 1:
			rng = Full(Const(lo), Const(hi))
		case 2:
			rng = Low(Const(lo))
		default:
			rng = High(Const(hi))
		}
		var n Namer
		got := MergeRanges(rng, rng, NewMergeCtx(&n))
		return got.Equal(rng)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRangeString(t *testing.T) {
	if Empty().String() != "[]" {
		t.Error("empty string form")
	}
	if got := Full(Const(0), Const(3)).String(); got != "[0..3]" {
		t.Errorf("full = %q", got)
	}
	if got := Low(Const(2)).String(); got != "[2..]" {
		t.Errorf("low = %q", got)
	}
	if got := High(Const(2)).String(); got != "[..2]" {
		t.Errorf("high = %q", got)
	}
}
