package intval

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestConstArithmetic(t *testing.T) {
	a, b := Const(7), Const(3)
	cases := []struct {
		got  IntVal
		want int64
	}{
		{a.Add(b), 10},
		{a.Sub(b), 4},
		{a.Neg(), -7},
		{a.MulK(3), 21},
		{a.Mul(b), 21},
	}
	for i, c := range cases {
		v, ok := c.got.AsConst()
		if !ok || v != c.want {
			t.Errorf("case %d: got %s, want %d", i, c.got, c.want)
		}
	}
}

func TestSymbolicArithmetic(t *testing.T) {
	var n Namer
	c0 := OfConstU(n.FreshConst())
	v0 := OfVar(n.FreshVar())

	// 2*c0 - 1 (the paper's expand example upper bound).
	ub := c0.MulK(2).Sub(Const(1))
	if ub.String() != "2*c0 - 1" {
		t.Errorf("ub = %s", ub)
	}
	// (v0 + 1) - v0 = 1
	d := v0.Add(Const(1)).Sub(v0)
	if k, ok := d.AsConst(); !ok || k != 1 {
		t.Errorf("delta = %s", d)
	}
	// v0 + c0 keeps both terms.
	s := v0.Add(c0)
	if !s.HasVar() || s.IsTop() {
		t.Errorf("v0+c0 = %s", s)
	}
	// Two distinct variable unknowns cannot be added.
	v1 := OfVar(n.FreshVar())
	if !v0.Add(v1).IsTop() {
		t.Error("v0+v1 should be top")
	}
	// Same variable adds coefficients.
	if got := v0.Add(v0); got.Equal(Top) || got.a != 2 {
		t.Errorf("v0+v0 = %s", got)
	}
	// v0 - v0 cancels the variable.
	if k, ok := v0.Sub(v0).AsConst(); !ok || k != 0 {
		t.Error("v0-v0 should be 0")
	}
	// Products of unknowns are top.
	if !v0.Mul(c0).IsTop() {
		t.Error("v0*c0 should be top")
	}
	// Top is absorbing.
	if !Top.Add(Const(1)).IsTop() || !Const(1).Sub(Top).IsTop() || !Top.MulK(0).IsTop() {
		t.Error("top must absorb")
	}
}

func TestMulKZero(t *testing.T) {
	var n Namer
	v := OfVar(n.FreshVar()).Add(OfConstU(n.FreshConst())).Add(Const(5))
	if k, ok := v.MulK(0).AsConst(); !ok || k != 0 {
		t.Error("x*0 should be 0")
	}
}

func TestDivExact(t *testing.T) {
	var n Namer
	c := OfConstU(n.FreshConst())
	x := c.MulK(4).Add(Const(8))
	got, ok := x.DivExact(4)
	if !ok || !got.Equal(c.Add(Const(2))) {
		t.Errorf("(4c+8)/4 = %s, ok=%v", got, ok)
	}
	if _, ok := x.DivExact(3); ok {
		t.Error("(4c+8)/3 must fail")
	}
	if _, ok := x.DivExact(0); ok {
		t.Error("division by zero must fail")
	}
}

func TestSubstVar(t *testing.T) {
	var n Namer
	v := n.FreshVar()
	x := OfVar(v).MulK(2).Add(Const(3)) // 2v+3
	s := OfVar(v).Add(Const(1))         // v -> v+1
	got := x.SubstVar(v, s)
	want := OfVar(v).MulK(2).Add(Const(5)) // 2(v+1)+3 = 2v+5
	if !got.Equal(want) {
		t.Errorf("subst = %s, want %s", got, want)
	}
	// Substituting an unrelated variable is identity.
	other := n.FreshVar()
	if !x.SubstVar(other, Const(0)).Equal(x) {
		t.Error("unrelated substitution should not change the value")
	}
}

func TestMergeEqualValues(t *testing.T) {
	var n Namer
	ctx := NewMergeCtx(&n)
	x := OfConstU(n.FreshConst()).Add(Const(2))
	if got := Merge(x, x, ctx); !got.Equal(x) {
		t.Errorf("merge(x,x) = %s", got)
	}
	if len(ctx.U) != 0 {
		t.Error("equal merge should not invent variables")
	}
}

func TestMergeConstStrideCreatesSharedVariable(t *testing.T) {
	var n Namer
	ctx := NewMergeCtx(&n)
	// Two components both stepping by 1: i merges 0 with 1, and the
	// range bound merges 0 with 1. They must share one variable.
	mi := Merge(Const(0), Const(1), ctx)
	mb := Merge(Const(0), Const(1), ctx)
	if !mi.HasVar() || !mb.HasVar() {
		t.Fatalf("merged = %s, %s", mi, mb)
	}
	if !mi.Equal(mb) {
		t.Errorf("same-stride components should merge to the same variable: %s vs %s", mi, mb)
	}
	// A component offset by a constant reuses the variable plus delta.
	mc := Merge(Const(5), Const(6), ctx)
	if !mc.Equal(mi.Add(Const(5))) {
		t.Errorf("offset component = %s, want %s", mc, mi.Add(Const(5)))
	}
	// A different stride gets a different variable.
	md := Merge(Const(0), Const(2), ctx)
	if md.Equal(mi) {
		t.Error("different strides must not share a variable")
	}
}

func TestMergeValidationIteration(t *testing.T) {
	// Second round of the paper's loop: merging v with v+1 must return v
	// by extending μ2 with v -> v+1, and a second component with the
	// same pair must agree through the recorded substitution.
	var n Namer
	ctx0 := NewMergeCtx(&n)
	v := Merge(Const(0), Const(1), ctx0) // invent v

	ctx := NewMergeCtx(&n)
	got1 := Merge(v, v.Add(Const(1)), ctx)
	if !got1.Equal(v) {
		t.Fatalf("merge(v, v+1) = %s, want %s", got1, v)
	}
	got2 := Merge(v, v.Add(Const(1)), ctx)
	if !got2.Equal(v) {
		t.Fatalf("second merge(v, v+1) = %s, want %s", got2, v)
	}
	// An inconsistent second component must fall to top.
	got3 := Merge(v, v.Add(Const(2)), ctx)
	if !got3.IsTop() {
		t.Errorf("merge(v, v+2) with μ2[v]=v+1 = %s, want ⊤", got3)
	}
}

func TestMergeMismatchedCoefficients(t *testing.T) {
	var n Namer
	v := OfVar(n.FreshVar())
	ctx := NewMergeCtx(&n)
	if got := Merge(v, v.MulK(2), ctx); !got.IsTop() {
		t.Errorf("merge(v,2v) = %s, want ⊤", got)
	}
}

func TestMergeTopAbsorbs(t *testing.T) {
	var n Namer
	ctx := NewMergeCtx(&n)
	if !Merge(Top, Const(1), ctx).IsTop() || !Merge(Const(1), Top, ctx).IsTop() {
		t.Error("top must absorb in merge")
	}
}

func TestMergeDisabled(t *testing.T) {
	var n Namer
	ctx := NewMergeCtx(&n)
	ctx.Disabled = true
	if got := Merge(Const(0), Const(1), ctx); !got.IsTop() {
		t.Errorf("disabled stride inference should merge to ⊤, got %s", got)
	}
	if got := Merge(Const(4), Const(4), ctx); !got.Equal(Const(4)) {
		t.Error("equal values still merge exactly when disabled")
	}
}

func TestMergeSwappedSides(t *testing.T) {
	// The variable may arrive in the second state (backward flow order);
	// Figure 1 swaps so the var side is i1.
	var n Namer
	ctx0 := NewMergeCtx(&n)
	v := Merge(Const(0), Const(1), ctx0)

	ctx := NewMergeCtx(&n)
	got := Merge(v.Add(Const(1)), v, ctx)
	if got.IsTop() {
		t.Fatalf("merge(v+1, v) = ⊤, want a variable expression")
	}
}

// genIntVal builds a random non-top IntVal over a tiny name space.
func genIntVal(r *rand.Rand) IntVal {
	x := Const(int64(r.Intn(9) - 4))
	if r.Intn(2) == 0 {
		x = x.Add(OfVar(VarU(r.Intn(2))).MulK(int64(r.Intn(5) - 2)))
	}
	if r.Intn(2) == 0 {
		x = x.Add(OfConstU(ConstU(r.Intn(2))).MulK(int64(r.Intn(5) - 2)))
	}
	return x
}

func TestQuickAddCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genIntVal(r), genIntVal(r)
		return a.Add(b).Equal(b.Add(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAddAssociative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := genIntVal(r), genIntVal(r), genIntVal(r)
		l := a.Add(b).Add(c)
		rr := a.Add(b.Add(c))
		return l.Equal(rr) || (l.IsTop() && rr.IsTop()) ||
			// Adding two distinct variables tops out; associativity holds
			// up to top ordering (l ⊑ r or r ⊑ l is fine for soundness,
			// but in this domain one-sided tops can differ).
			l.IsTop() || rr.IsTop()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubSelfIsZero(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genIntVal(r)
		k, ok := a.Sub(a).AsConst()
		return ok && k == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickNegInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genIntVal(r)
		return a.Neg().Neg().Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMulKDistributes(t *testing.T) {
	// Distributivity up to ⊤ absorption: (a+b)·k computed on the sum may
	// be ⊤ when the sum already is (e.g. distinct variables with k = 0,
	// where the distributed side folds to 0) — a sound over-
	// approximation. The distributed side can never be coarser.
	f := func(seed int64, k int8) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genIntVal(r), genIntVal(r)
		l := a.Add(b).MulK(int64(k))
		rr := a.MulK(int64(k)).Add(b.MulK(int64(k)))
		if rr.IsTop() {
			return l.IsTop()
		}
		if l.IsTop() {
			return true
		}
		return l.Equal(rr)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genIntVal(r)
		var n Namer
		n.nextVar = 100 // avoid clashing with generated names
		ctx := NewMergeCtx(&n)
		return Merge(a, a, ctx).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeSoundInBothStates(t *testing.T) {
	// If merge(i1, i2) returns m (non-top), then substituting μ1 into m
	// must give i1 and μ2 into m must give i2 (soundness of Figure 1: a
	// variable stands for its recorded value in each input state).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c1 := int64(r.Intn(20) - 10)
		c2 := int64(r.Intn(20) - 10)
		i1, i2 := Const(c1), Const(c2)
		var n Namer
		ctx := NewMergeCtx(&n)
		m := Merge(i1, i2, ctx)
		if m.IsTop() {
			return true
		}
		if !m.HasVar() {
			return m.Equal(i1) && m.Equal(i2)
		}
		_, v := m.VarTerm()
		in1 := m.SubstVar(v, ctx.Mu1[v])
		in2 := m.SubstVar(v, ctx.Mu2[v])
		return in1.Equal(i1) && in2.Equal(i2)
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestStringForms(t *testing.T) {
	var n Namer
	v := n.FreshVar()
	c := n.FreshConst()
	cases := []struct {
		v    IntVal
		want string
	}{
		{Const(0), "0"},
		{Const(-3), "-3"},
		{Top, "⊤"},
		{OfVar(v), "v0"},
		{OfConstU(c), "c0"},
		{OfVar(v).MulK(-1), "-v0"},
		{OfVar(v).Add(Const(1)), "v0 + 1"},
	}
	for _, tc := range cases {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String(%#v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestEqualIsReflectDeepEqualCompatible(t *testing.T) {
	var n Namer
	a := OfVar(n.FreshVar()).Add(OfConstU(n.FreshConst())).Add(Const(2))
	b := OfVar(0).Add(OfConstU(0)).Add(Const(2))
	if !a.Equal(b) || !reflect.DeepEqual(a, b) {
		t.Error("structurally identical values must be Equal and DeepEqual")
	}
}
