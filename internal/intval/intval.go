// Package intval implements the symbolic integer domain of the paper's
// array analysis (§3.2): IntVals are linear combinations
//
//	a·v + k₀·c₀ + … + kₙ·cₙ + b
//
// with at most one term in a *variable unknown* v (a value that may differ
// between states, typically a loop induction value), any number of terms
// in *constant unknowns* cᵢ (values fixed across all states, such as an
// argument array's length), and an integer constant b. The lattice top ⊤
// represents "unknown integer".
//
// The companion Merge function implements the paper's Figure 1
// merge_intvals procedure: when two states join with components that
// differ by a common constant stride, a shared variable unknown is
// invented so that relationships between components (e.g. a loop index and
// the low bound of an array's uninitialized range) survive the merge.
package intval

import (
	"fmt"
	"strings"
)

// VarU names a variable unknown.
type VarU int32

// ConstU names a constant unknown.
type ConstU int32

// Term is one kᵢ·cᵢ product.
type Term struct {
	C ConstU
	K int64
}

// IntVal is a symbolic integer value. The zero IntVal is the constant 0.
// IntVals are immutable; operations return new values.
type IntVal struct {
	top bool
	a   int64  // variable-unknown coefficient
	v   VarU   // valid when a != 0
	ts  []Term // constant-unknown terms, sorted by C, all K != 0
	b   int64
}

// Top is the unknown-integer lattice top.
var Top = IntVal{top: true}

// Const returns the constant value b.
func Const(b int64) IntVal { return IntVal{b: b} }

// OfVar returns the value 1·v.
func OfVar(v VarU) IntVal { return IntVal{a: 1, v: v} }

// constUCache interns the one-term lists of small constant unknowns.
// Term lists are immutable (every operation builds a new list), so the
// cached slices can be shared freely, including across goroutines.
var constUCache = func() [64][]Term {
	var c [64][]Term
	for i := range c {
		c[i] = []Term{{C: ConstU(i), K: 1}}
	}
	return c
}()

// OfConstU returns the value 1·c.
func OfConstU(c ConstU) IntVal {
	if int(c) < len(constUCache) {
		return IntVal{ts: constUCache[c]}
	}
	return IntVal{ts: []Term{{C: c, K: 1}}}
}

// IsTop reports whether i is ⊤.
func (i IntVal) IsTop() bool { return i.top }

// AsConst returns the literal value when i is a pure integer constant.
func (i IntVal) AsConst() (int64, bool) {
	if i.top || i.a != 0 || len(i.ts) != 0 {
		return 0, false
	}
	return i.b, true
}

// VarTerm returns the variable-unknown coefficient and name (a == 0 means
// no variable term).
func (i IntVal) VarTerm() (a int64, v VarU) { return i.a, i.v }

// HasVar reports whether i has a variable-unknown term.
func (i IntVal) HasVar() bool { return !i.top && i.a != 0 }

// Equal reports structural equality (the only equality that matters in
// this normalized representation).
func (i IntVal) Equal(j IntVal) bool {
	if i.top || j.top {
		return i.top == j.top
	}
	if i.a != j.a || (i.a != 0 && i.v != j.v) || i.b != j.b || len(i.ts) != len(j.ts) {
		return false
	}
	for k := range i.ts {
		if i.ts[k] != j.ts[k] {
			return false
		}
	}
	return true
}

// addTerms merges two sorted term lists.
func addTerms(x, y []Term, ysign int64) []Term {
	out := make([]Term, 0, len(x)+len(y))
	i, j := 0, 0
	for i < len(x) || j < len(y) {
		switch {
		case j >= len(y) || (i < len(x) && x[i].C < y[j].C):
			out = append(out, x[i])
			i++
		case i >= len(x) || y[j].C < x[i].C:
			out = append(out, Term{C: y[j].C, K: ysign * y[j].K})
			j++
		default:
			k := x[i].K + ysign*y[j].K
			if k != 0 {
				out = append(out, Term{C: x[i].C, K: k})
			}
			i++
			j++
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Add returns i + j, or ⊤ when the sum would need two variable unknowns.
func (i IntVal) Add(j IntVal) IntVal {
	if i.top || j.top {
		return Top
	}
	r := IntVal{b: i.b + j.b, ts: addTerms(i.ts, j.ts, 1)}
	switch {
	case i.a == 0:
		r.a, r.v = j.a, j.v
	case j.a == 0:
		r.a, r.v = i.a, i.v
	case i.v == j.v:
		r.a = i.a + j.a
		if r.a != 0 {
			r.v = i.v
		}
	default:
		return Top
	}
	return r
}

// Neg returns -i.
func (i IntVal) Neg() IntVal {
	if i.top {
		return Top
	}
	r := IntVal{a: -i.a, v: i.v, b: -i.b}
	if len(i.ts) > 0 {
		r.ts = make([]Term, len(i.ts))
		for k, t := range i.ts {
			r.ts[k] = Term{C: t.C, K: -t.K}
		}
	}
	return r
}

// Sub returns i - j.
func (i IntVal) Sub(j IntVal) IntVal { return i.Add(j.Neg()) }

// MulK returns k·i.
func (i IntVal) MulK(k int64) IntVal {
	if i.top {
		return Top
	}
	if k == 0 {
		return IntVal{}
	}
	r := IntVal{a: i.a * k, v: i.v, b: i.b * k}
	if len(i.ts) > 0 {
		r.ts = make([]Term, len(i.ts))
		for n, t := range i.ts {
			r.ts[n] = Term{C: t.C, K: t.K * k}
		}
	}
	return r
}

// Mul returns i·j when one side is a literal constant, ⊤ otherwise
// (products of unknowns leave the linear domain).
func (i IntVal) Mul(j IntVal) IntVal {
	if k, ok := j.AsConst(); ok {
		return i.MulK(k)
	}
	if k, ok := i.AsConst(); ok {
		return j.MulK(k)
	}
	return Top
}

// DivExact returns i/k when every coefficient is exactly divisible.
func (i IntVal) DivExact(k int64) (IntVal, bool) {
	if i.top || k == 0 {
		return Top, false
	}
	if i.a%k != 0 || i.b%k != 0 {
		return Top, false
	}
	r := IntVal{a: i.a / k, v: i.v, b: i.b / k}
	if len(i.ts) > 0 {
		r.ts = make([]Term, len(i.ts))
		for n, t := range i.ts {
			if t.K%k != 0 {
				return Top, false
			}
			r.ts[n] = Term{C: t.C, K: t.K / k}
		}
	}
	return r, true
}

// SubstVar returns i with its variable term a·v replaced by a·s. The
// result is i itself when i has no variable term or a different variable.
func (i IntVal) SubstVar(v VarU, s IntVal) IntVal {
	if i.top || i.a == 0 || i.v != v {
		return i
	}
	base := IntVal{ts: i.ts, b: i.b}
	return base.Add(s.MulK(i.a))
}

// String renders the value for diagnostics, e.g. "2*v3 + c0 - 1".
func (i IntVal) String() string {
	if i.top {
		return "⊤"
	}
	var parts []string
	if i.a != 0 {
		switch i.a {
		case 1:
			parts = append(parts, fmt.Sprintf("v%d", i.v))
		case -1:
			parts = append(parts, fmt.Sprintf("-v%d", i.v))
		default:
			parts = append(parts, fmt.Sprintf("%d*v%d", i.a, i.v))
		}
	}
	for _, t := range i.ts {
		switch t.K {
		case 1:
			parts = append(parts, fmt.Sprintf("c%d", t.C))
		case -1:
			parts = append(parts, fmt.Sprintf("-c%d", t.C))
		default:
			parts = append(parts, fmt.Sprintf("%d*c%d", t.K, t.C))
		}
	}
	if i.b != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", i.b))
	}
	s := strings.Join(parts, " + ")
	return strings.ReplaceAll(s, "+ -", "- ")
}

// Namer generates fresh unknowns. The zero value is ready to use.
type Namer struct {
	nextVar   VarU
	nextConst ConstU
}

// FreshVar returns a new variable unknown.
func (n *Namer) FreshVar() VarU {
	v := n.nextVar
	n.nextVar++
	return v
}

// FreshConst returns a new constant unknown.
func (n *Namer) FreshConst() ConstU {
	c := n.nextConst
	n.nextConst++
	return c
}

// MergeCtx carries the shared stride/substitution maps of one state merge
// (paper Figure 1): U maps constant strides to the variable unknowns
// invented for them, and Mu1/Mu2 record what each variable stands for in
// the two merged states. All integer components of a single state merge
// must share one MergeCtx — that sharing is what lets the analysis
// discover that, e.g., a loop index and an uninitialized-range bound vary
// together.
type MergeCtx struct {
	N        *Namer
	U        map[int64]VarU
	Mu1, Mu2 map[VarU]IntVal
	// Disabled turns off variable-unknown invention (the NoStride
	// ablation): differing components merge straight to ⊤.
	Disabled bool
}

// NewMergeCtx returns an empty context drawing fresh names from n.
func NewMergeCtx(n *Namer) *MergeCtx {
	return &MergeCtx{N: n, U: map[int64]VarU{}, Mu1: map[VarU]IntVal{}, Mu2: map[VarU]IntVal{}}
}

// Merge merges one integer state component, following Figure 1 of the
// paper. i1 comes from the first state (Mu1 side), i2 from the second.
func Merge(i1, i2 IntVal, ctx *MergeCtx) IntVal {
	if i1.top || i2.top {
		return Top
	}
	if i1.Equal(i2) {
		return i1
	}
	if ctx == nil || ctx.Disabled {
		return Top
	}
	mu1, mu2 := ctx.Mu1, ctx.Mu2
	if !i1.HasVar() {
		i1, i2 = i2, i1
		mu1, mu2 = mu2, mu1
	}
	delta := i2.Sub(i1)
	if d, isConst := delta.AsConst(); isConst && !i1.HasVar() {
		// Neither side has a variable term and they differ by the
		// constant stride d: reuse or invent the stride's variable.
		if v, ok := ctx.U[d]; ok {
			off := i1.Sub(mu1[v])
			if off.HasVar() {
				return Top
			}
			return OfVar(v).Add(off)
		}
		v := ctx.N.FreshVar()
		ctx.U[d] = v
		mu1[v] = i1
		mu2[v] = i2
		return OfVar(v)
	}
	if i1.HasVar() {
		_, v1 := i1.VarTerm()
		if s, ok := mu2[v1]; ok {
			if i1.SubstVar(v1, s).Equal(i2) {
				return i1
			}
			return Top
		}
		if s, ok := match(i1, i2); ok {
			mu2[v1] = s
			return i1
		}
		return Top
	}
	return Top
}

// match is called when i1 has a variable term a₁·v₁; it succeeds when i2
// has either a variable term a₁·v₂ with the same coefficient — returning
// an IntVal expressing v₁ as v₂ plus a constant expression — or no
// variable term at all, in which case v₁ is bound to the constant
// expression (i2 - rest(i1))/a₁. The latter generalizes the paper's match
// and is what lets an in-progress loop state (index = v) merge with a
// fresh outer-iteration state (index = 0) without collapsing to ⊤: the
// substitution v ↦ 0 records what v stands for in the incoming state, and
// the fixed-point validation pass checks it like any other assumption.
func match(i1, i2 IntVal) (IntVal, bool) {
	a1, _ := i1.VarTerm()
	a2, v2 := i2.VarTerm()
	if a1 == 0 {
		return Top, false
	}
	r1 := IntVal{ts: i1.ts, b: i1.b}
	if a2 == 0 {
		d, ok := i2.Sub(r1).DivExact(a1)
		if !ok {
			return Top, false
		}
		return d, true
	}
	if a2 != a1 {
		return Top, false
	}
	r2 := IntVal{ts: i2.ts, b: i2.b}
	d, ok := r2.Sub(r1).DivExact(a1)
	if !ok {
		return Top, false
	}
	return OfVar(v2).Add(d), true
}
