package intval

// Property tests for Merge (the paper's Figure 1 merge_intvals) and
// MergeRanges over random IntVal/Range pairs: commutativity where it
// holds, a pinned counterexample where it deliberately does not,
// substitution soundness through the μ maps, and the over-approximation
// guarantee that a merged null range only contains indices both inputs
// guarantee null.

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genVarFree builds a random IntVal with no variable term: a constant
// plus up to two constant-unknown terms. Variable-free inputs are the
// common case in practice (loop bounds, lengths, literal indices) and
// the fragment on which Merge is symmetric.
func genVarFree(r *rand.Rand) IntVal {
	x := Const(int64(r.Intn(9) - 4))
	if r.Intn(2) == 0 {
		x = x.Add(OfConstU(ConstU(r.Intn(2))).MulK(int64(r.Intn(5) - 2)))
	}
	return x
}

// substAll replaces x's variable term (if any) by its binding in mu,
// leaving unbound variables alone. IntVals carry at most one variable
// term, so a single substitution step concretizes fully.
func substAll(x IntVal, mu map[VarU]IntVal) IntVal {
	if x.IsTop() || !x.HasVar() {
		return x
	}
	_, v := x.VarTerm()
	s, ok := mu[v]
	if !ok {
		return x
	}
	return x.SubstVar(v, s)
}

// TestQuickMergeCommutativeVarFree: on variable-free inputs Merge is
// commutative up to the (deterministic) fresh-variable naming — running
// the same merge sequence with the sides swapped in a fresh context
// yields structurally identical results, because a stride d one way is
// stride -d the other and both mint the same fresh name.
func TestQuickMergeCommutativeVarFree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const merges = 3
		as := make([]IntVal, merges)
		bs := make([]IntVal, merges)
		for i := range as {
			as[i], bs[i] = genVarFree(r), genVarFree(r)
		}
		var n1, n2 Namer
		fwd := NewMergeCtx(&n1)
		rev := NewMergeCtx(&n2)
		for i := range as {
			mf := Merge(as[i], bs[i], fwd)
			mr := Merge(bs[i], as[i], rev)
			if !mf.Equal(mr) {
				t.Logf("merge %d: %s vs %s → forward %s, reverse %s", i, as[i], bs[i], mf, mr)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestMergeNotCommutativeWithVariables pins the known, documented
// asymmetry: when an input carries a variable term, Merge keeps the
// first state's expression and binds the second state's meaning in μ2,
// so swapping the sides swaps which expression survives. Both answers
// must still be sound through their own μ maps — commutativity fails
// only syntactically, never semantically.
func TestMergeNotCommutativeWithVariables(t *testing.T) {
	var n Namer
	v := OfVar(n.FreshVar())

	fwd := NewMergeCtx(&n)
	mf := Merge(v, v.Add(Const(1)), fwd)
	rev := NewMergeCtx(&n)
	mr := Merge(v.Add(Const(1)), v, rev)

	if mf.IsTop() || mr.IsTop() {
		t.Fatalf("merge(v, v+1) = %s, merge(v+1, v) = %s: want non-top", mf, mr)
	}
	if mf.Equal(mr) {
		t.Fatalf("expected the documented asymmetry, got %s both ways", mf)
	}
	for _, c := range []struct {
		name   string
		m      IntVal
		ctx    *MergeCtx
		i1, i2 IntVal
	}{
		{"forward", mf, fwd, v, v.Add(Const(1))},
		{"reverse", mr, rev, v.Add(Const(1)), v},
	} {
		if got := substAll(c.m, c.ctx.Mu1); !got.Equal(c.i1) {
			t.Errorf("%s: result %s through μ1 = %s, want %s", c.name, c.m, got, c.i1)
		}
		if got := substAll(c.m, c.ctx.Mu2); !got.Equal(c.i2) {
			t.Errorf("%s: result %s through μ2 = %s, want %s", c.name, c.m, got, c.i2)
		}
	}
}

// TestQuickMergeSubstitutionSound: for any sequence of merges sharing
// one context, every non-top result denotes its first input when read
// through μ1 and its second input when read through μ2. First inputs may
// carry pre-existing variable terms (the in-progress-loop shape);
// second inputs are variable-free, matching how the analysis merges an
// iterating state with a fresh one.
func TestQuickMergeSubstitutionSound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var n Namer
		// Pre-existing variables v0/v1 come from earlier merge contexts;
		// start fresh names beyond them.
		n.nextVar = 10
		ctx := NewMergeCtx(&n)
		for k := 0; k < 3; k++ {
			i1 := genVarFree(r)
			if r.Intn(2) == 0 {
				i1 = i1.Add(OfVar(VarU(r.Intn(2))).MulK(int64(r.Intn(3) - 1)))
			}
			i2 := genVarFree(r)
			m := Merge(i1, i2, ctx)
			if m.IsTop() {
				continue
			}
			if got := substAll(m, ctx.Mu1); !got.Equal(i1) {
				t.Logf("merge %d: merge(%s, %s) = %s; through μ1 = %s, want %s", k, i1, i2, m, got, i1)
				return false
			}
			if got := substAll(m, ctx.Mu2); !got.Equal(i2) {
				t.Logf("merge %d: merge(%s, %s) = %s; through μ2 = %s, want %s", k, i1, i2, m, got, i2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// arrayLen is the concrete array length the range tests model: ranges
// denote subsets of the valid indices [0..arrayLen-1].
const arrayLen = 9

// genConstRange builds a random Range with literal bounds that respects
// the domain's creation invariants for an array of length arrayLen:
// Full ranges exist only as the whole allocation [0..len-1] (range.go),
// while Low/High arise from contracting it at either end.
func genConstRange(r *rand.Rand) Range {
	switch r.Intn(4) {
	case 0:
		return Empty()
	case 1:
		return Full(Const(0), Const(arrayLen-1))
	case 2:
		return Low(Const(int64(r.Intn(arrayLen + 1))))
	default:
		return High(Const(int64(r.Intn(arrayLen))))
	}
}

// member reports whether index k lies in a range whose bounds are
// literal constants; known is false when a bound is still symbolic.
func member(r Range, k int64) (contains, known bool) {
	switch r.Kind {
	case RangeEmpty:
		return false, true
	case RangeFull:
		lo, ok1 := r.Lo.AsConst()
		hi, ok2 := r.Hi.AsConst()
		return ok1 && ok2 && k >= lo && k <= hi, ok1 && ok2
	case RangeLow:
		lo, ok := r.Lo.AsConst()
		return ok && k >= lo, ok
	default:
		hi, ok := r.Hi.AsConst()
		return ok && k <= hi, ok
	}
}

// concretize reads a merged range in one input state by substituting
// that state's μ bindings into the bounds.
func concretize(r Range, mu map[VarU]IntVal) Range {
	r.Lo = substAll(r.Lo, mu)
	r.Hi = substAll(r.Hi, mu)
	return r
}

// TestQuickMergeRangesOverApproximates: the merged null range, read in
// either input state through that state's μ map, must be a subset of
// that input's null range over the array's valid indices — an index is
// known null after the merge only if both states guaranteed it. This is
// the soundness direction: a too-large merged range would elide
// barriers for stores that may overwrite a non-null (reachable)
// pointer. (Validity matters: Full [0..len-1] merged with Low yields
// Low, whose half-open tail only coincides with Full inside the array.)
func TestQuickMergeRangesOverApproximates(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		r1, r2 := genConstRange(r), genConstRange(r)
		var n Namer
		ctx := NewMergeCtx(&n)
		merged := MergeRanges(r1, r2, ctx)
		for _, side := range []struct {
			mu map[VarU]IntVal
			in Range
		}{{ctx.Mu1, r1}, {ctx.Mu2, r2}} {
			conc := concretize(merged, side.mu)
			for k := int64(0); k < arrayLen; k++ {
				inMerged, known := member(conc, k)
				if !known {
					t.Logf("merged %s not concretizable from constant inputs %s, %s", merged, r1, r2)
					return false
				}
				if !inMerged {
					continue
				}
				if inInput, _ := member(side.in, k); !inInput {
					t.Logf("merge(%s, %s) = %s: index %d in merged range but not in input %s",
						r1, r2, merged, k, side.in)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestQuickMergeRangesIdempotentAndCommutative: merging a range with
// itself in a fresh context is the identity, and constant-bound ranges
// merge the same in either order (same fresh-naming argument as the
// IntVal case).
func TestQuickMergeRangesIdempotentAndCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		r1, r2 := genConstRange(r), genConstRange(r)
		var n1, n2, n3 Namer
		if got := MergeRanges(r1, r1, NewMergeCtx(&n1)); !got.Equal(r1) {
			t.Logf("merge(%s, %s) = %s, want identity", r1, r1, got)
			return false
		}
		fwd := MergeRanges(r1, r2, NewMergeCtx(&n2))
		rev := MergeRanges(r2, r1, NewMergeCtx(&n3))
		if !fwd.Equal(rev) {
			t.Logf("merge(%s, %s): forward %s, reverse %s", r1, r2, fwd, rev)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
