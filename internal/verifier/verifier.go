// Package verifier performs abstract stack simulation over bytecode
// methods, in the role the JVM bytecode verifier plays for the paper's
// analyses: it establishes that operand stacks agree in depth and type at
// every control-flow join (paper §2.2 relies on this to merge local states
// elementwise) and computes each method's MaxStack.
package verifier

import (
	"fmt"

	"satbelim/internal/bytecode"
	"satbelim/internal/cfg"
)

// vkind classifies an abstract verification type.
type vkind int

const (
	vInt vkind = iota
	vBool
	vNull   // the null constant, joinable with any reference type
	vRef    // a reference of known type (ref field non-nil)
	vRefAny // a reference of unknown exact type (after a type-distinct join)
)

// vtype is a verification type.
type vtype struct {
	kind vkind
	ref  *bytecode.Type // set when kind == vRef
}

func (v vtype) String() string {
	switch v.kind {
	case vInt:
		return "int"
	case vBool:
		return "boolean"
	case vNull:
		return "null"
	case vRefAny:
		return "ref"
	default:
		return v.ref.String()
	}
}

func (v vtype) isRef() bool { return v.kind == vNull || v.kind == vRef || v.kind == vRefAny }

func typeToV(t *bytecode.Type) vtype {
	switch t.Kind {
	case bytecode.KindInt:
		return vtype{kind: vInt}
	case bytecode.KindBool:
		return vtype{kind: vBool}
	default:
		return vtype{kind: vRef, ref: t}
	}
}

// mergeV joins two verification types; ok is false on an illegal merge.
func mergeV(a, b vtype) (vtype, bool) {
	if a == b {
		return a, true
	}
	if a.isRef() && b.isRef() {
		if a.kind == vNull {
			return b, true
		}
		if b.kind == vNull {
			return a, true
		}
		if a.kind == vRef && b.kind == vRef && a.ref.Equal(b.ref) {
			return a, true
		}
		return vtype{kind: vRefAny}, true
	}
	return vtype{}, false
}

// assignableV reports whether a value of type v may be stored where
// declared type t is expected.
func assignableV(t *bytecode.Type, v vtype) bool {
	switch t.Kind {
	case bytecode.KindInt:
		return v.kind == vInt
	case bytecode.KindBool:
		return v.kind == vBool
	case bytecode.KindVoid:
		return false
	default:
		return v.kind == vNull || v.kind == vRefAny || (v.kind == vRef && v.ref.Equal(t))
	}
}

// Error is a verification failure.
type Error struct {
	Method string
	PC     int
	Msg    string
}

func (e *Error) Error() string {
	if e.PC < 0 {
		return fmt.Sprintf("verify %s: %s", e.Method, e.Msg)
	}
	return fmt.Sprintf("verify %s: pc %d: %s", e.Method, e.PC, e.Msg)
}

type verifier struct {
	p *bytecode.Program
	m *bytecode.Method
	g *cfg.Graph

	// entry[b] is the stack state at the entry of block b, valid when
	// seen[b] is set. (The state itself may be an empty stack, so a nil
	// check cannot stand in for a visited flag.)
	entry    [][]vtype
	seen     []bool
	maxStack int
}

func (v *verifier) errf(pc int, format string, args ...any) error {
	return &Error{Method: v.m.QualifiedName(), PC: pc, Msg: fmt.Sprintf(format, args...)}
}

// Verify checks one method and fills in its MaxStack. Malformed bytecode
// always surfaces as an *Error naming the method — never a panic: a
// recover guard turns internal faults on adversarial input (e.g. from
// fuzzing) into ordinary rejections, so a parallel verify pool cannot be
// taken down by one bad method.
func Verify(p *bytecode.Program, m *bytecode.Method) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &Error{Method: m.QualifiedName(), PC: -1, Msg: fmt.Sprintf("internal verifier panic: %v", r)}
		}
	}()
	g, err := cfg.Build(m)
	if err != nil {
		return &Error{Method: m.QualifiedName(), PC: -1, Msg: err.Error()}
	}
	v := &verifier{
		p: p, m: m, g: g,
		entry: make([][]vtype, len(g.Blocks)),
		seen:  make([]bool, len(g.Blocks)),
	}
	v.seen[0] = true

	work := []int{0}
	inWork := make([]bool, len(g.Blocks))
	inWork[0] = true
	for len(work) > 0 {
		id := work[0]
		work = work[1:]
		inWork[id] = false
		out, targets, err := v.simulate(g.Blocks[id])
		if err != nil {
			return err
		}
		for _, tgt := range targets {
			changed, err := v.mergeInto(tgt, out)
			if err != nil {
				return err
			}
			if changed && !inWork[tgt] {
				work = append(work, tgt)
				inWork[tgt] = true
			}
		}
	}
	m.MaxStack = v.maxStack
	return nil
}

// VerifyProgram verifies every method.
func VerifyProgram(p *bytecode.Program) error {
	for _, m := range p.Methods() {
		if err := Verify(p, m); err != nil {
			return err
		}
	}
	return nil
}

// mergeInto merges state into block id's entry; reports whether it changed.
func (v *verifier) mergeInto(id int, state []vtype) (bool, error) {
	if !v.seen[id] {
		v.seen[id] = true
		v.entry[id] = append([]vtype(nil), state...)
		return true, nil
	}
	cur := v.entry[id]
	if len(cur) != len(state) {
		return false, v.errf(v.g.Blocks[id].Start, "stack depth mismatch at join: %d vs %d", len(cur), len(state))
	}
	changed := false
	for i := range cur {
		merged, ok := mergeV(cur[i], state[i])
		if !ok {
			return false, v.errf(v.g.Blocks[id].Start, "stack type mismatch at join: %s vs %s", cur[i], state[i])
		}
		if merged != cur[i] {
			cur[i] = merged
			changed = true
		}
	}
	return changed, nil
}

// simulate runs the block from its entry state, returning the out state
// and the successor block ids it flows to.
func (v *verifier) simulate(b *cfg.Block) (out []vtype, targets []int, err error) {
	stk := append([]vtype(nil), v.entry[b.ID]...)

	push := func(t vtype) {
		stk = append(stk, t)
		if len(stk) > v.maxStack {
			v.maxStack = len(stk)
		}
	}
	pop := func(pc int) (vtype, error) {
		if len(stk) == 0 {
			return vtype{}, v.errf(pc, "pop from empty stack")
		}
		t := stk[len(stk)-1]
		stk = stk[:len(stk)-1]
		return t, nil
	}
	popKind := func(pc int, k vkind, what string) (vtype, error) {
		t, err := pop(pc)
		if err != nil {
			return t, err
		}
		if k == vRef {
			if !t.isRef() {
				return t, v.errf(pc, "%s requires a reference, found %s", what, t)
			}
			return t, nil
		}
		if t.kind != k {
			return t, v.errf(pc, "%s requires %v operand, found %s", what, vtype{kind: k}, t)
		}
		return t, nil
	}

	for pc := b.Start; pc < b.End; pc++ {
		in := &v.m.Code[pc]
		switch in.Op {
		case bytecode.OpNop:
		case bytecode.OpConst:
			push(vtype{kind: vInt})
		case bytecode.OpConstBool:
			push(vtype{kind: vBool})
		case bytecode.OpConstNull:
			push(vtype{kind: vNull})
		case bytecode.OpLoad:
			slot := int(in.A)
			if slot < 0 || slot >= len(v.m.SlotTypes) {
				return nil, nil, v.errf(pc, "load from undeclared slot %d", slot)
			}
			push(typeToV(v.m.SlotTypes[slot]))
		case bytecode.OpStore:
			slot := int(in.A)
			if slot < 0 || slot >= len(v.m.SlotTypes) {
				return nil, nil, v.errf(pc, "store to undeclared slot %d", slot)
			}
			t, err := pop(pc)
			if err != nil {
				return nil, nil, err
			}
			if !assignableV(v.m.SlotTypes[slot], t) {
				return nil, nil, v.errf(pc, "cannot store %s into slot %d of type %s", t, slot, v.m.SlotTypes[slot])
			}
		case bytecode.OpDup:
			if len(stk) == 0 {
				return nil, nil, v.errf(pc, "dup on empty stack")
			}
			push(stk[len(stk)-1])
		case bytecode.OpPop:
			if _, err := pop(pc); err != nil {
				return nil, nil, err
			}
		case bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul, bytecode.OpDiv, bytecode.OpRem:
			if _, err := popKind(pc, vInt, in.Op.String()); err != nil {
				return nil, nil, err
			}
			if _, err := popKind(pc, vInt, in.Op.String()); err != nil {
				return nil, nil, err
			}
			push(vtype{kind: vInt})
		case bytecode.OpNeg:
			if _, err := popKind(pc, vInt, "neg"); err != nil {
				return nil, nil, err
			}
			push(vtype{kind: vInt})
		case bytecode.OpAnd, bytecode.OpOr:
			if _, err := popKind(pc, vBool, in.Op.String()); err != nil {
				return nil, nil, err
			}
			if _, err := popKind(pc, vBool, in.Op.String()); err != nil {
				return nil, nil, err
			}
			push(vtype{kind: vBool})
		case bytecode.OpNot:
			if _, err := popKind(pc, vBool, "not"); err != nil {
				return nil, nil, err
			}
			push(vtype{kind: vBool})
		case bytecode.OpCmpEQ, bytecode.OpCmpNE, bytecode.OpCmpLT, bytecode.OpCmpLE,
			bytecode.OpCmpGT, bytecode.OpCmpGE:
			a, err := pop(pc)
			if err != nil {
				return nil, nil, err
			}
			bb, err := pop(pc)
			if err != nil {
				return nil, nil, err
			}
			// Equality works on int or bool pairs; ordering on ints.
			ordered := in.Op != bytecode.OpCmpEQ && in.Op != bytecode.OpCmpNE
			okPair := (a.kind == vInt && bb.kind == vInt) ||
				(!ordered && a.kind == vBool && bb.kind == vBool)
			if !okPair {
				return nil, nil, v.errf(pc, "%s on %s and %s", in.Op, bb, a)
			}
			push(vtype{kind: vBool})
		case bytecode.OpRefEQ, bytecode.OpRefNE:
			if _, err := popKind(pc, vRef, in.Op.String()); err != nil {
				return nil, nil, err
			}
			if _, err := popKind(pc, vRef, in.Op.String()); err != nil {
				return nil, nil, err
			}
			push(vtype{kind: vBool})
		case bytecode.OpGoto:
			targets = append(targets, v.g.BlockOf(int(in.A)))
			return stk, targets, nil
		case bytecode.OpIfTrue, bytecode.OpIfFalse:
			if _, err := popKind(pc, vBool, in.Op.String()); err != nil {
				return nil, nil, err
			}
			targets = append(targets, v.g.BlockOf(int(in.A)))
		case bytecode.OpIfNull, bytecode.OpIfNonNull:
			if _, err := popKind(pc, vRef, in.Op.String()); err != nil {
				return nil, nil, err
			}
			targets = append(targets, v.g.BlockOf(int(in.A)))
		case bytecode.OpGetField:
			ft := v.p.FieldType(in.Field)
			if ft == nil {
				return nil, nil, v.errf(pc, "unresolved field %s", in.Field)
			}
			obj, err := popKind(pc, vRef, "getfield")
			if err != nil {
				return nil, nil, err
			}
			if obj.kind == vRef && (obj.ref.Kind != bytecode.KindClass || obj.ref.Class != in.Field.Class) {
				return nil, nil, v.errf(pc, "getfield %s on %s", in.Field, obj)
			}
			push(typeToV(ft))
		case bytecode.OpPutField:
			ft := v.p.FieldType(in.Field)
			if ft == nil {
				return nil, nil, v.errf(pc, "unresolved field %s", in.Field)
			}
			val, err := pop(pc)
			if err != nil {
				return nil, nil, err
			}
			if !assignableV(ft, val) {
				return nil, nil, v.errf(pc, "putfield %s: cannot store %s into %s", in.Field, val, ft)
			}
			obj, err := popKind(pc, vRef, "putfield")
			if err != nil {
				return nil, nil, err
			}
			if obj.kind == vRef && (obj.ref.Kind != bytecode.KindClass || obj.ref.Class != in.Field.Class) {
				return nil, nil, v.errf(pc, "putfield %s on %s", in.Field, obj)
			}
		case bytecode.OpGetStatic:
			ft := v.p.FieldType(in.Field)
			if ft == nil {
				return nil, nil, v.errf(pc, "unresolved field %s", in.Field)
			}
			push(typeToV(ft))
		case bytecode.OpPutStatic:
			ft := v.p.FieldType(in.Field)
			if ft == nil {
				return nil, nil, v.errf(pc, "unresolved field %s", in.Field)
			}
			val, err := pop(pc)
			if err != nil {
				return nil, nil, err
			}
			if !assignableV(ft, val) {
				return nil, nil, v.errf(pc, "putstatic %s: cannot store %s into %s", in.Field, val, ft)
			}
		case bytecode.OpNewInstance:
			push(vtype{kind: vRef, ref: in.Type})
		case bytecode.OpNewArray:
			if _, err := popKind(pc, vInt, "newarray length"); err != nil {
				return nil, nil, err
			}
			push(vtype{kind: vRef, ref: bytecode.ArrayOf(in.Type)})
		case bytecode.OpArrayLength:
			arr, err := popKind(pc, vRef, "arraylength")
			if err != nil {
				return nil, nil, err
			}
			if arr.kind == vRef && arr.ref.Kind != bytecode.KindArray {
				return nil, nil, v.errf(pc, "arraylength on %s", arr)
			}
			push(vtype{kind: vInt})
		case bytecode.OpAALoad:
			if _, err := popKind(pc, vInt, "aaload index"); err != nil {
				return nil, nil, err
			}
			arr, err := popKind(pc, vRef, "aaload")
			if err != nil {
				return nil, nil, err
			}
			if arr.kind == vRef {
				if !arr.ref.IsRefArray() {
					return nil, nil, v.errf(pc, "aaload on %s", arr)
				}
				push(vtype{kind: vRef, ref: arr.ref.Elem})
			} else {
				push(vtype{kind: vRefAny})
			}
		case bytecode.OpAAStore:
			val, err := pop(pc)
			if err != nil {
				return nil, nil, err
			}
			if !val.isRef() {
				return nil, nil, v.errf(pc, "aastore of non-reference %s", val)
			}
			if _, err := popKind(pc, vInt, "aastore index"); err != nil {
				return nil, nil, err
			}
			arr, err := popKind(pc, vRef, "aastore")
			if err != nil {
				return nil, nil, err
			}
			if arr.kind == vRef && !arr.ref.IsRefArray() {
				return nil, nil, v.errf(pc, "aastore on %s", arr)
			}
		case bytecode.OpIALoad:
			if _, err := popKind(pc, vInt, "iaload index"); err != nil {
				return nil, nil, err
			}
			arr, err := popKind(pc, vRef, "iaload")
			if err != nil {
				return nil, nil, err
			}
			elem := vtype{kind: vInt}
			if arr.kind == vRef {
				if arr.ref.Kind != bytecode.KindArray || arr.ref.Elem.IsRef() {
					return nil, nil, v.errf(pc, "iaload on %s", arr)
				}
				elem = typeToV(arr.ref.Elem)
			}
			push(elem)
		case bytecode.OpIAStore:
			val, err := pop(pc)
			if err != nil {
				return nil, nil, err
			}
			if val.isRef() {
				return nil, nil, v.errf(pc, "iastore of reference %s", val)
			}
			if _, err := popKind(pc, vInt, "iastore index"); err != nil {
				return nil, nil, err
			}
			arr, err := popKind(pc, vRef, "iastore")
			if err != nil {
				return nil, nil, err
			}
			if arr.kind == vRef && (arr.ref.Kind != bytecode.KindArray || arr.ref.Elem.IsRef()) {
				return nil, nil, v.errf(pc, "iastore on %s", arr)
			}
		case bytecode.OpInvoke:
			callee := v.p.Method(in.Method)
			if callee == nil {
				return nil, nil, v.errf(pc, "unresolved method %s", in.Method)
			}
			for i := callee.NumArgs() - 1; i >= 0; i-- {
				at := callee.ArgType(i)
				val, err := pop(pc)
				if err != nil {
					return nil, nil, err
				}
				if !assignableV(at, val) {
					return nil, nil, v.errf(pc, "invoke %s: argument %d: cannot use %s as %s", in.Method, i, val, at)
				}
			}
			if callee.Return != bytecode.Void {
				push(typeToV(callee.Return))
			}
		case bytecode.OpSpawn:
			callee := v.p.Method(in.Method)
			if callee == nil {
				return nil, nil, v.errf(pc, "unresolved method %s", in.Method)
			}
			if callee.Static || len(callee.Params) != 0 || callee.Return != bytecode.Void {
				return nil, nil, v.errf(pc, "spawn target %s must be a void instance method with no parameters", in.Method)
			}
			if _, err := popKind(pc, vRef, "spawn"); err != nil {
				return nil, nil, err
			}
		case bytecode.OpReturn:
			if v.m.Return != bytecode.Void {
				return nil, nil, v.errf(pc, "return without value in method returning %s", v.m.Return)
			}
			return stk, nil, nil
		case bytecode.OpReturnValue:
			if v.m.Return == bytecode.Void {
				return nil, nil, v.errf(pc, "returnvalue in void method")
			}
			val, err := pop(pc)
			if err != nil {
				return nil, nil, err
			}
			if !assignableV(v.m.Return, val) {
				return nil, nil, v.errf(pc, "cannot return %s from method returning %s", val, v.m.Return)
			}
			return stk, nil, nil
		case bytecode.OpPrint:
			if _, err := popKind(pc, vInt, "print"); err != nil {
				return nil, nil, err
			}
		case bytecode.OpTrap:
			return stk, nil, nil
		default:
			return nil, nil, v.errf(pc, "unknown opcode %v", in.Op)
		}
	}
	// Fell through the block end.
	targets = append(targets, v.g.BlockOf(b.End))
	return stk, targets, nil
}
