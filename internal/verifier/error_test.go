package verifier

import (
	"errors"
	"strings"
	"testing"

	"satbelim/internal/bytecode"
)

// Error-path hardening: malformed bytecode — whether hand-assembled,
// mutated by fuzzing, or produced by a buggy transform — must surface as
// an *Error carrying the method name, never as a panic.

func TestVerifyRejectsBranchTargetOutOfRange(t *testing.T) {
	expectReject(t, "branch target 999 out of range", func(b *bytecode.Builder) {
		b.Emit(bytecode.Instr{Op: bytecode.OpGoto, A: 999})
		b.Return()
	})
}

func TestVerifyRejectsNegativeBranchTarget(t *testing.T) {
	expectReject(t, "out of range", func(b *bytecode.Builder) {
		b.Emit(bytecode.Instr{Op: bytecode.OpIfTrue, A: -7})
		b.Return()
	})
}

func TestVerifyRejectsUnresolvedField(t *testing.T) {
	expectReject(t, "unresolved field", func(b *bytecode.Builder) {
		b.GetStatic(bytecode.FieldRef{Class: "Nope", Name: "ghost"})
		b.Op(bytecode.OpPop)
		b.Return()
	})
}

func TestVerifyRejectsUnresolvedInvoke(t *testing.T) {
	expectReject(t, "unresolved method", func(b *bytecode.Builder) {
		b.Invoke(bytecode.MethodRef{Class: "Nope", Name: "ghost"})
		b.Return()
	})
}

func TestVerifyRejectsBranchOnRef(t *testing.T) {
	expectReject(t, "iftrue", func(b *bytecode.Builder) {
		b.New("T")
		b.IfTrue("end")
		b.Label("end")
		b.Return()
	})
}

func TestVerifyRejectsUnderflowAcrossBlocks(t *testing.T) {
	// The underflowing pop sits in its own block, reached by a branch:
	// exercises merge-then-simulate rather than straight-line checking.
	expectReject(t, "pop from empty stack", func(b *bytecode.Builder) {
		b.ConstBool(true)
		b.IfTrue("deep")
		b.Return()
		b.Label("deep")
		b.Op(bytecode.OpPop)
		b.Return()
	})
}

// TestVerifyPanicIsolated drives the verifier into an internal fault —
// OpNewInstance with a nil type pushes a typeless reference that later
// dereferences nil — and checks the recover guard converts it into an
// *Error instead of unwinding the caller (e.g. a parallel verify pool).
func TestVerifyPanicIsolated(t *testing.T) {
	p := bytecode.NewProgram()
	cls := &bytecode.Class{Name: "T", Fields: []*bytecode.Field{
		{Name: "f", Type: bytecode.ClassType("T")},
	}}
	b := bytecode.NewBuilder("T", "bad", true)
	b.Emit(bytecode.Instr{Op: bytecode.OpNewInstance}) // Type nil: invalid
	b.Null()
	b.PutField(bytecode.FieldRef{Class: "T", Name: "f"})
	b.Return()
	m := b.Build()
	cls.Methods = append(cls.Methods, m)
	p.AddClass(cls)

	err := Verify(p, m) // must not panic
	var ve *Error
	if !errors.As(err, &ve) {
		t.Fatalf("err = %v, want *Error", err)
	}
	if ve.Method != "T.bad" {
		t.Errorf("error names method %q, want T.bad", ve.Method)
	}
	if !strings.Contains(ve.Msg, "panic") {
		t.Errorf("Msg = %q, want internal panic diagnostic", ve.Msg)
	}
}

// TestVerifyErrorsNameTheMethod asserts the Error type renders the
// method for every rejection shape (cfg failure vs simulate failure).
func TestVerifyErrorsNameTheMethod(t *testing.T) {
	builders := []func(b *bytecode.Builder){
		func(b *bytecode.Builder) { b.Emit(bytecode.Instr{Op: bytecode.OpGoto, A: 123}); b.Return() },
		func(b *bytecode.Builder) { b.Op(bytecode.OpPop); b.Return() },
	}
	for i, build := range builders {
		p := bytecode.NewProgram()
		cls := &bytecode.Class{Name: "T"}
		b := bytecode.NewBuilder("T", "bad", true)
		build(b)
		m := b.Build()
		cls.Methods = append(cls.Methods, m)
		p.AddClass(cls)
		err := Verify(p, m)
		if err == nil || !strings.Contains(err.Error(), "T.bad") {
			t.Errorf("case %d: error %v does not name the method", i, err)
		}
	}
}
