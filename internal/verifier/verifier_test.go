package verifier

import (
	"strings"
	"testing"

	"satbelim/internal/bytecode"
	"satbelim/internal/codegen"
	"satbelim/internal/minijava"
)

// compileSrc compiles MiniJava source for end-to-end verifier coverage.
func compileSrc(t *testing.T, src string) *bytecode.Program {
	t.Helper()
	ast, err := minijava.Parse("t.mj", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ch, err := minijava.Check("t.mj", ast)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	p, err := codegen.Compile(ch)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

func TestVerifyCompiledPrograms(t *testing.T) {
	srcs := map[string]string{
		"arith": `class A { static int f(int a, int b) { return (a+b)*(a-b)/2 % 7; } }`,
		"fields": `
class N { N next; int v; N(int x) { v = x; next = null; } }
class A { static void main() { N n = new N(1); n.next = new N(2); print(n.next.v); } }`,
		"arrays": `
class T { int v; }
class A { static void main() {
    T[] ts = new T[4];
    for (int i = 0; i < ts.length; i = i + 1) ts[i] = new T();
    int[][] grid = new int[3][];
    grid[0] = new int[3];
    grid[0][1] = 5;
    print(grid[0][1]);
} }`,
		"shortcircuit": `
class A { static boolean f(int x) { return x > 0 && x < 10 || x == 42; } }`,
		"loops": `
class A { static int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) { if (i % 2 == 0) s = s + i; else s = s - 1; }
    while (s > 100) s = s / 2;
    return s;
} }`,
		"calls": `
class B { int id; B(int i) { id = i; } int get() { return id; } }
class A { static void main() { B b = new B(7); print(b.get()); } }`,
		"spawn": `
class W { void run() { } }
class A { static void main() { W w = new W(); spawn w.run(); } }`,
		"paperexpand": `
class T { int v; }
class U { static T[] expand(T[] ta) {
    T[] nta = new T[ta.length*2];
    for (int i = 0; i < ta.length; i = i + 1) nta[i] = ta[i];
    return nta;
} }`,
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			p := compileSrc(t, src)
			if err := VerifyProgram(p); err != nil {
				t.Fatalf("VerifyProgram: %v", err)
			}
			for _, m := range p.Methods() {
				if m.MaxStack <= 0 && len(m.Code) > 1 {
					t.Errorf("%s: MaxStack = %d not set", m.QualifiedName(), m.MaxStack)
				}
			}
		})
	}
}

func TestVerifyMaxStack(t *testing.T) {
	p := compileSrc(t, `class A { static int f(int a) { return a + a * a; } }`)
	m := p.Method(bytecode.MethodRef{Class: "A", Name: "f"})
	if err := Verify(p, m); err != nil {
		t.Fatal(err)
	}
	if m.MaxStack != 3 {
		t.Errorf("MaxStack = %d, want 3", m.MaxStack)
	}
}

// buildBad assembles a deliberately broken method in class T with field f
// and checks the verifier rejects it with the given message fragment.
func expectReject(t *testing.T, wantSub string, build func(b *bytecode.Builder)) {
	t.Helper()
	p := bytecode.NewProgram()
	cls := &bytecode.Class{Name: "T", Fields: []*bytecode.Field{
		{Name: "f", Type: bytecode.ClassType("T")},
		{Name: "s", Type: bytecode.Int, Static: true},
	}}
	b := bytecode.NewBuilder("T", "bad", true)
	build(b)
	m := b.Build()
	cls.Methods = append(cls.Methods, m)
	p.AddClass(cls)
	err := Verify(p, m)
	if err == nil {
		t.Fatalf("expected rejection containing %q, got nil\n%s", wantSub, bytecode.Disassemble(m))
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err, wantSub)
	}
}

func TestVerifyRejectsUnderflow(t *testing.T) {
	expectReject(t, "pop from empty stack", func(b *bytecode.Builder) {
		b.Op(bytecode.OpPop)
		b.Return()
	})
}

func TestVerifyRejectsTypeConfusion(t *testing.T) {
	expectReject(t, "requires int operand", func(b *bytecode.Builder) {
		b.Null()
		b.Const(1)
		b.Op(bytecode.OpAdd)
		b.Op(bytecode.OpPop)
		b.Return()
	})
}

func TestVerifyRejectsBadStore(t *testing.T) {
	expectReject(t, "cannot store", func(b *bytecode.Builder) {
		s := b.DeclareSlot(bytecode.Int)
		b.Null()
		b.Store(s)
		b.Return()
	})
}

func TestVerifyRejectsDepthMismatchAtJoin(t *testing.T) {
	expectReject(t, "stack depth mismatch", func(b *bytecode.Builder) {
		b.ConstBool(true)
		b.IfTrue("join")
		b.Const(1) // one path pushes an extra value
		b.Label("join")
		b.Return()
	})
}

func TestVerifyRejectsKindMismatchAtJoin(t *testing.T) {
	expectReject(t, "stack type mismatch", func(b *bytecode.Builder) {
		b.ConstBool(true)
		b.IfTrue("other")
		b.Const(1)
		b.Goto("join")
		b.Label("other")
		b.Null()
		b.Label("join")
		b.Op(bytecode.OpPop)
		b.Return()
	})
}

func TestVerifyMergesDistinctClassesToAnyRef(t *testing.T) {
	p := bytecode.NewProgram()
	clsA := &bytecode.Class{Name: "A"}
	clsB := &bytecode.Class{Name: "B"}
	b := bytecode.NewBuilder("A", "m", true)
	b.ConstBool(true)
	b.IfTrue("other")
	b.New("A")
	b.Goto("join")
	b.Label("other")
	b.New("B")
	b.Label("join")
	b.Op(bytecode.OpPop)
	b.Return()
	m := b.Build()
	clsA.Methods = append(clsA.Methods, m)
	p.AddClass(clsA)
	p.AddClass(clsB)
	if err := Verify(p, m); err != nil {
		t.Fatalf("distinct class merge should verify as any-ref: %v", err)
	}
}

func TestVerifyRejectsBadFieldReceiver(t *testing.T) {
	expectReject(t, "requires a reference", func(b *bytecode.Builder) {
		b.Const(1)
		b.GetField(bytecode.FieldRef{Class: "T", Name: "f"})
		b.Op(bytecode.OpPop)
		b.Return()
	})
}

func TestVerifyRejectsWrongFieldClass(t *testing.T) {
	expectReject(t, "getfield", func(b *bytecode.Builder) {
		b.Const(3)
		b.NewArray(bytecode.Int) // an int[] is a ref, but not a T
		b.GetField(bytecode.FieldRef{Class: "T", Name: "f"})
		b.Op(bytecode.OpPop)
		b.Return()
	})
}

func TestVerifyRejectsReturnMismatch(t *testing.T) {
	expectReject(t, "returnvalue in void method", func(b *bytecode.Builder) {
		b.Const(1)
		b.ReturnValue()
	})
}

func TestVerifyRejectsAAStoreOfInt(t *testing.T) {
	expectReject(t, "aastore of non-reference", func(b *bytecode.Builder) {
		b.Const(1)
		b.NewArray(bytecode.ClassType("T"))
		b.Const(0)
		b.Const(5)
		b.Op(bytecode.OpAAStore)
		b.Return()
	})
}

func TestVerifyRejectsIAStoreOfRef(t *testing.T) {
	expectReject(t, "iastore of reference", func(b *bytecode.Builder) {
		b.Const(1)
		b.NewArray(bytecode.Int)
		b.Const(0)
		b.Null()
		b.Op(bytecode.OpIAStore)
		b.Return()
	})
}

func TestVerifyRejectsBadInvokeArg(t *testing.T) {
	p := bytecode.NewProgram()
	cls := &bytecode.Class{Name: "T"}
	callee := bytecode.NewBuilder("T", "callee", true)
	callee.AddParam(bytecode.Int)
	callee.Return()
	cls.Methods = append(cls.Methods, callee.Build())

	b := bytecode.NewBuilder("T", "caller", true)
	b.Null()
	b.Invoke(bytecode.MethodRef{Class: "T", Name: "callee"})
	b.Return()
	m := b.Build()
	cls.Methods = append(cls.Methods, m)
	p.AddClass(cls)
	err := Verify(p, m)
	if err == nil || !strings.Contains(err.Error(), "argument") {
		t.Fatalf("expected invoke-argument rejection, got %v", err)
	}
}

func TestVerifyNullFlowsIntoRefSlots(t *testing.T) {
	p := compileSrc(t, `
class T { T f; static void main() { T t = new T(); t.f = null; t = null; } }
`)
	if err := VerifyProgram(p); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyBooleanAndArrayOps(t *testing.T) {
	p := compileSrc(t, `
class A {
    static void main() {
        boolean x = true && false || !true;
        int[] a = new int[2];
        a[0] = 3;
        print(a[0]);
        boolean[] bs = new boolean[1];
        bs[0] = x;
        if (bs[0]) print(1);
    }
}
`)
	if err := VerifyProgram(p); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsSpawnOfStatic(t *testing.T) {
	p := bytecode.NewProgram()
	cls := &bytecode.Class{Name: "T"}
	callee := bytecode.NewBuilder("T", "s", true)
	callee.Return()
	cls.Methods = append(cls.Methods, callee.Build())
	b := bytecode.NewBuilder("T", "bad", true)
	b.New("T")
	b.Spawn(bytecode.MethodRef{Class: "T", Name: "s"})
	b.Return()
	m := b.Build()
	cls.Methods = append(cls.Methods, m)
	p.AddClass(cls)
	if err := Verify(p, m); err == nil || !strings.Contains(err.Error(), "spawn target") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsArrayLengthOnObject(t *testing.T) {
	expectReject(t, "arraylength", func(b *bytecode.Builder) {
		b.New("T")
		b.Op(bytecode.OpArrayLength)
		b.Op(bytecode.OpPop)
		b.Return()
	})
}

func TestVerifyRejectsAALoadOnIntArray(t *testing.T) {
	expectReject(t, "aaload", func(b *bytecode.Builder) {
		b.Const(2)
		b.NewArray(bytecode.Int)
		b.Const(0)
		b.Op(bytecode.OpAALoad)
		b.Op(bytecode.OpPop)
		b.Return()
	})
}

func TestVerifyRejectsIALoadOnRefArray(t *testing.T) {
	expectReject(t, "iaload", func(b *bytecode.Builder) {
		b.Const(2)
		b.NewArray(bytecode.ClassType("T"))
		b.Const(0)
		b.Op(bytecode.OpIALoad)
		b.Op(bytecode.OpPop)
		b.Return()
	})
}

func TestVerifyRejectsReturnWithoutValueInIntMethod(t *testing.T) {
	p := bytecode.NewProgram()
	cls := &bytecode.Class{Name: "T"}
	b := bytecode.NewBuilder("T", "bad", true)
	b.SetReturn(bytecode.Int)
	b.Return() // void return in int method
	m := b.Build()
	cls.Methods = append(cls.Methods, m)
	p.AddClass(cls)
	if err := Verify(p, m); err == nil || !strings.Contains(err.Error(), "return without value") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsOrderedCompareOnBooleans(t *testing.T) {
	expectReject(t, "cmplt", func(b *bytecode.Builder) {
		b.ConstBool(true)
		b.ConstBool(false)
		b.Op(bytecode.OpCmpLT)
		b.Op(bytecode.OpPop)
		b.Return()
	})
}

func TestVerifyNopAndTrap(t *testing.T) {
	p := bytecode.NewProgram()
	cls := &bytecode.Class{Name: "T"}
	b := bytecode.NewBuilder("T", "m", true)
	b.SetReturn(bytecode.Int)
	b.Op(bytecode.OpNop)
	b.Const(1)
	b.ReturnValue()
	b.Op(bytecode.OpTrap) // unreachable but must verify
	m := b.Build()
	cls.Methods = append(cls.Methods, m)
	p.AddClass(cls)
	if err := Verify(p, m); err != nil {
		t.Fatal(err)
	}
}
