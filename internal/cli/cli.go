// Package cli holds the flag surface and export plumbing shared by the
// satbc / satbvm / satbbench commands: the -trace / -metrics observability
// flags, the versioned JSON document writer, and atomic file output.
package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"satbelim/internal/obs"
	"satbelim/internal/pipeline"
	"satbelim/internal/report"
)

// Obs carries the observability flags common to every command. Zero
// values mean "off": no collector is installed and every hook stays on
// its zero-overhead disabled path.
type Obs struct {
	// TracePath receives a Chrome trace_event JSON file (-trace).
	TracePath string
	// MetricsPath receives a report.Document with the metrics section
	// (-metrics).
	MetricsPath string
	// Summary prints the human-readable observability table to stderr
	// after the run; it is implied by either path being set.
	Summary bool

	collector *obs.Collector
}

// RegisterFlags installs -trace and -metrics on the default flag set.
func (o *Obs) RegisterFlags() {
	flag.StringVar(&o.TracePath, "trace", "",
		"write a Chrome trace_event JSON file (open in Perfetto or chrome://tracing)")
	flag.StringVar(&o.MetricsPath, "metrics", "",
		"write aggregated span/counter metrics as versioned JSON")
}

// Start enables the process-wide collector when any export was requested.
// Call it after flag.Parse and before any compile or run.
func (o *Obs) Start() {
	if o.TracePath != "" || o.MetricsPath != "" {
		o.collector = obs.Enable()
	}
}

// Enabled reports whether Start installed a collector.
func (o *Obs) Enabled() bool { return o.collector != nil }

// Finish stops collection and writes the requested export files. tool
// names the command in the metrics document. It is a no-op when Start
// never enabled collection.
func (o *Obs) Finish(tool string) error {
	if o.collector == nil {
		return nil
	}
	c := o.collector
	o.collector = nil
	obs.Disable()

	if o.TracePath != "" {
		data, err := c.ChromeTrace()
		if err != nil {
			return fmt.Errorf("encode trace: %w", err)
		}
		if err := WriteFileAtomic(o.TracePath, data); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "%s: wrote %s (load in https://ui.perfetto.dev)\n", tool, o.TracePath)
	}

	m := c.Metrics()
	if o.MetricsPath != "" {
		doc := report.NewDocument(tool)
		doc.Metrics = &m
		cs := pipeline.DefaultCache.Stats()
		doc.BuildCache = &cs
		if err := WriteDocument(o.MetricsPath, doc); err != nil {
			return fmt.Errorf("write metrics: %w", err)
		}
		fmt.Fprintf(os.Stderr, "%s: wrote %s\n", tool, o.MetricsPath)
	}

	if o.Summary || o.TracePath != "" || o.MetricsPath != "" {
		fmt.Fprint(os.Stderr, report.FormatObsSummary(&m))
	}
	return nil
}

// WriteDocument marshals a report.Document (indented, trailing newline)
// and writes it atomically.
func WriteDocument(path string, doc *report.Document) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, append(data, '\n'))
}

// WriteFileAtomic writes data to path via a temp file in the same
// directory plus rename, so readers never observe a partial document and
// an interrupted run leaves the previous file intact.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
