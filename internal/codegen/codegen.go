// Package codegen lowers a type-checked MiniJava program to bytecode.
//
// The lowering follows JVM conventions where they matter to the analyses:
// object allocation compiles to newinstance; dup; <args>; invoke <init>
// (so constructor inlining later exposes the pre-null fields of the fresh
// object), locals are default-initialized at their declaration, and array
// initialization loops compile to the aastore pattern the array analysis
// recognizes.
package codegen

import (
	"fmt"

	"satbelim/internal/bytecode"
	"satbelim/internal/minijava"
)

// Compile lowers a checked program. The returned program's Main is set
// when a unique static void main() exists.
func Compile(ch *minijava.Checked) (*bytecode.Program, error) {
	p := bytecode.NewProgram()
	for _, cd := range ch.Prog.Classes {
		ci := ch.Classes[cd.Name]
		cls := &bytecode.Class{Name: cd.Name}
		for _, fd := range cd.Fields {
			cls.Fields = append(cls.Fields, ci.Fields[fd.Name])
		}
		for _, md := range cd.Methods {
			m, err := compileMethod(ch, ci, md)
			if err != nil {
				return nil, err
			}
			cls.Methods = append(cls.Methods, m)
		}
		p.AddClass(cls)
	}
	if main, err := ch.FindMain(); err == nil {
		p.Main = main
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("codegen produced invalid bytecode: %w", err)
	}
	return p, nil
}

// gen is the per-method code generator.
type gen struct {
	ch     *minijava.Checked
	class  *minijava.ClassInfo
	method *minijava.MethodSig
	b      *bytecode.Builder
	labels int
}

func compileMethod(ch *minijava.Checked, ci *minijava.ClassInfo, md *minijava.MethodDecl) (*bytecode.Method, error) {
	sig := ci.Methods[md.Name]
	b := bytecode.NewBuilder(ci.Decl.Name, md.Name, md.Static)
	if md.Ctor {
		b.SetCtor()
	}
	b.SetReturn(sig.Return)
	// Declare the checker-assigned slots (receiver, params, locals).
	for _, st := range ch.Slots[md] {
		b.DeclareSlot(st)
	}
	b.Method().Params = sig.Params

	g := &gen{ch: ch, class: ci, method: sig, b: b}
	if err := g.stmt(md.Body); err != nil {
		return nil, err
	}
	if sig.Return == bytecode.Void {
		// Implicit return for void methods and constructors.
		b.Return()
	} else {
		// A value-returning method that falls off the end is a source
		// bug; trap it so the VM fails loudly rather than silently.
		b.Op(bytecode.OpTrap)
	}
	return b.Build(), nil
}

// setLine tags the instruction at pc with a source line.
func (g *gen) setLine(pc, line int) {
	m := g.b.Method()
	if pc >= 0 && pc < len(m.Code) {
		m.Code[pc].Line = line
	}
}

func (g *gen) newLabel(prefix string) string {
	g.labels++
	return fmt.Sprintf("%s%d", prefix, g.labels)
}

func (g *gen) stmt(s minijava.Stmt) error {
	switch st := s.(type) {
	case *minijava.Block:
		for _, inner := range st.Stmts {
			if err := g.stmt(inner); err != nil {
				return err
			}
		}
		return nil
	case *minijava.VarDecl:
		if st.Init != nil {
			if err := g.expr(st.Init); err != nil {
				return err
			}
		} else {
			// Default-initialize, mirroring the JVM's zeroed frame
			// discipline and giving the verifier a defined type at
			// every pc.
			g.pushZero(st.DeclType)
		}
		pc := g.b.Store(st.Slot)
		g.setLine(pc, st.Line)
		return nil
	case *minijava.If:
		elseL := g.newLabel("else")
		endL := g.newLabel("endif")
		if err := g.expr(st.Cond); err != nil {
			return err
		}
		if st.Else != nil {
			g.b.IfFalse(elseL)
			if err := g.stmt(st.Then); err != nil {
				return err
			}
			g.b.Goto(endL)
			g.b.Label(elseL)
			if err := g.stmt(st.Else); err != nil {
				return err
			}
			g.b.Label(endL)
		} else {
			g.b.IfFalse(endL)
			if err := g.stmt(st.Then); err != nil {
				return err
			}
			g.b.Label(endL)
		}
		return nil
	case *minijava.While:
		top := g.newLabel("while")
		end := g.newLabel("endwhile")
		g.b.Label(top)
		if err := g.expr(st.Cond); err != nil {
			return err
		}
		g.b.IfFalse(end)
		if err := g.stmt(st.Body); err != nil {
			return err
		}
		g.b.Goto(top)
		g.b.Label(end)
		return nil
	case *minijava.For:
		top := g.newLabel("for")
		end := g.newLabel("endfor")
		if st.Init != nil {
			if err := g.stmt(st.Init); err != nil {
				return err
			}
		}
		g.b.Label(top)
		if st.Cond != nil {
			if err := g.expr(st.Cond); err != nil {
				return err
			}
			g.b.IfFalse(end)
		}
		if err := g.stmt(st.Body); err != nil {
			return err
		}
		if st.Post != nil {
			if err := g.stmt(st.Post); err != nil {
				return err
			}
		}
		g.b.Goto(top)
		g.b.Label(end)
		return nil
	case *minijava.Return:
		if st.Value != nil {
			if err := g.expr(st.Value); err != nil {
				return err
			}
			pc := g.b.ReturnValue()
			g.setLine(pc, st.Line)
		} else {
			pc := g.b.Return()
			g.setLine(pc, st.Line)
		}
		return nil
	case *minijava.ExprStmt:
		if err := g.expr(st.E); err != nil {
			return err
		}
		if st.E.Type() != bytecode.Void {
			g.b.Op(bytecode.OpPop)
		}
		return nil
	case *minijava.Print:
		if err := g.expr(st.E); err != nil {
			return err
		}
		pc := g.b.Op(bytecode.OpPrint)
		g.setLine(pc, st.Line)
		return nil
	case *minijava.Spawn:
		if err := g.expr(st.Call.Recv); err != nil {
			return err
		}
		pc := g.b.Spawn(st.Call.Method)
		g.setLine(pc, st.Line)
		return nil
	case *minijava.Assign:
		return g.assign(st)
	default:
		return fmt.Errorf("codegen: unknown statement %T", s)
	}
}

// pushZero pushes the default value for a type.
func (g *gen) pushZero(t *bytecode.Type) {
	switch {
	case t == bytecode.Int || t.Kind == bytecode.KindInt:
		g.b.Const(0)
	case t == bytecode.Bool || t.Kind == bytecode.KindBool:
		g.b.ConstBool(false)
	default:
		g.b.Null()
	}
}

func (g *gen) assign(st *minijava.Assign) error {
	switch lhs := st.LHS.(type) {
	case *minijava.Ident:
		switch lhs.Kind {
		case minijava.SymLocal:
			if err := g.expr(st.RHS); err != nil {
				return err
			}
			pc := g.b.Store(lhs.Slot)
			g.setLine(pc, st.Line)
		case minijava.SymField:
			g.b.Load(0) // this
			if err := g.expr(st.RHS); err != nil {
				return err
			}
			pc := g.b.PutField(lhs.Field)
			g.setLine(pc, st.Line)
		case minijava.SymStaticField:
			if err := g.expr(st.RHS); err != nil {
				return err
			}
			pc := g.b.PutStatic(lhs.Field)
			g.setLine(pc, st.Line)
		default:
			return fmt.Errorf("codegen: bad assignment target kind %v", lhs.Kind)
		}
		return nil
	case *minijava.FieldAccess:
		if lhs.Static {
			if err := g.expr(st.RHS); err != nil {
				return err
			}
			pc := g.b.PutStatic(lhs.Field)
			g.setLine(pc, st.Line)
			return nil
		}
		if err := g.expr(lhs.Obj); err != nil {
			return err
		}
		if err := g.expr(st.RHS); err != nil {
			return err
		}
		pc := g.b.PutField(lhs.Field)
		g.setLine(pc, st.Line)
		return nil
	case *minijava.Index:
		if err := g.expr(lhs.Arr); err != nil {
			return err
		}
		if err := g.expr(lhs.Index); err != nil {
			return err
		}
		if err := g.expr(st.RHS); err != nil {
			return err
		}
		op := bytecode.OpIAStore
		if lhs.Arr.Type().IsRefArray() {
			op = bytecode.OpAAStore
		}
		pc := g.b.Op(op)
		g.setLine(pc, st.Line)
		return nil
	default:
		return fmt.Errorf("codegen: unknown assignment target %T", st.LHS)
	}
}

func (g *gen) expr(e minijava.Expr) error {
	switch ex := e.(type) {
	case *minijava.IntLit:
		g.b.Const(ex.Val)
	case *minijava.BoolLit:
		g.b.ConstBool(ex.Val)
	case *minijava.NullLit:
		g.b.Null()
	case *minijava.This:
		g.b.Load(0)
	case *minijava.Ident:
		switch ex.Kind {
		case minijava.SymLocal:
			g.b.Load(ex.Slot)
		case minijava.SymField:
			g.b.Load(0)
			g.b.GetField(ex.Field)
		case minijava.SymStaticField:
			g.b.GetStatic(ex.Field)
		default:
			return fmt.Errorf("codegen: identifier %s not a value", ex.Name)
		}
	case *minijava.FieldAccess:
		if ex.Static {
			g.b.GetStatic(ex.Field)
			return nil
		}
		if err := g.expr(ex.Obj); err != nil {
			return err
		}
		g.b.GetField(ex.Field)
	case *minijava.Index:
		if err := g.expr(ex.Arr); err != nil {
			return err
		}
		if err := g.expr(ex.Index); err != nil {
			return err
		}
		if ex.Arr.Type().IsRefArray() {
			g.b.Op(bytecode.OpAALoad)
		} else {
			g.b.Op(bytecode.OpIALoad)
		}
	case *minijava.Length:
		if err := g.expr(ex.Arr); err != nil {
			return err
		}
		g.b.Op(bytecode.OpArrayLength)
	case *minijava.NewObject:
		pc := g.b.New(ex.ClassName)
		g.setLine(pc, ex.Line)
		if ex.Ctor != nil {
			g.b.Op(bytecode.OpDup)
			for _, a := range ex.Args {
				if err := g.expr(a); err != nil {
					return err
				}
			}
			cpc := g.b.Invoke(*ex.Ctor)
			g.setLine(cpc, ex.Line)
		}
	case *minijava.NewArray:
		if err := g.expr(ex.Len); err != nil {
			return err
		}
		pc := g.b.Emit(bytecode.Instr{Op: bytecode.OpNewArray, Type: ex.ElemType})
		g.setLine(pc, ex.Line)
	case *minijava.Call:
		if !ex.Static {
			if ex.Recv != nil {
				if err := g.expr(ex.Recv); err != nil {
					return err
				}
			} else {
				g.b.Load(0) // implicit this
			}
		}
		for _, a := range ex.Args {
			if err := g.expr(a); err != nil {
				return err
			}
		}
		pc := g.b.Invoke(ex.Method)
		g.setLine(pc, ex.Line)
	case *minijava.Unary:
		if err := g.expr(ex.X); err != nil {
			return err
		}
		switch ex.Op {
		case "-":
			g.b.Op(bytecode.OpNeg)
		case "!":
			g.b.Op(bytecode.OpNot)
		default:
			return fmt.Errorf("codegen: unknown unary op %s", ex.Op)
		}
	case *minijava.Binary:
		return g.binary(ex)
	default:
		return fmt.Errorf("codegen: unknown expression %T", e)
	}
	return nil
}

var intBinOps = map[string]bytecode.Op{
	"+": bytecode.OpAdd, "-": bytecode.OpSub, "*": bytecode.OpMul,
	"/": bytecode.OpDiv, "%": bytecode.OpRem,
	"<": bytecode.OpCmpLT, "<=": bytecode.OpCmpLE,
	">": bytecode.OpCmpGT, ">=": bytecode.OpCmpGE,
}

func (g *gen) binary(ex *minijava.Binary) error {
	switch ex.Op {
	case "&&", "||":
		// Short-circuit with the dup pattern: the left value survives on
		// the stack when it decides the result.
		end := g.newLabel("sc")
		if err := g.expr(ex.X); err != nil {
			return err
		}
		g.b.Op(bytecode.OpDup)
		if ex.Op == "&&" {
			g.b.IfFalse(end)
		} else {
			g.b.IfTrue(end)
		}
		g.b.Op(bytecode.OpPop)
		if err := g.expr(ex.Y); err != nil {
			return err
		}
		g.b.Label(end)
		return nil
	case "==", "!=":
		if err := g.expr(ex.X); err != nil {
			return err
		}
		if err := g.expr(ex.Y); err != nil {
			return err
		}
		xt, yt := ex.X.Type(), ex.Y.Type()
		isRef := xt.IsRef() || yt.IsRef() ||
			(xt.Kind == bytecode.KindClass && xt.Class == "<null>") ||
			(yt.Kind == bytecode.KindClass && yt.Class == "<null>")
		if isRef {
			if ex.Op == "==" {
				g.b.Op(bytecode.OpRefEQ)
			} else {
				g.b.Op(bytecode.OpRefNE)
			}
		} else {
			if ex.Op == "==" {
				g.b.Op(bytecode.OpCmpEQ)
			} else {
				g.b.Op(bytecode.OpCmpNE)
			}
		}
		return nil
	default:
		op, ok := intBinOps[ex.Op]
		if !ok {
			return fmt.Errorf("codegen: unknown binary op %s", ex.Op)
		}
		if err := g.expr(ex.X); err != nil {
			return err
		}
		if err := g.expr(ex.Y); err != nil {
			return err
		}
		g.b.Op(op)
		return nil
	}
}
