package codegen

import (
	"strings"
	"testing"

	"satbelim/internal/bytecode"
	"satbelim/internal/minijava"
)

func compile(t *testing.T, src string) *bytecode.Program {
	t.Helper()
	ast, err := minijava.Parse("t.mj", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ch, err := minijava.Check("t.mj", ast)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	p, err := Compile(ch)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

func ops(m *bytecode.Method) []bytecode.Op {
	out := make([]bytecode.Op, len(m.Code))
	for i := range m.Code {
		out[i] = m.Code[i].Op
	}
	return out
}

func TestCompileCtorPattern(t *testing.T) {
	p := compile(t, `
class P { int x; P(int x0) { x = x0; } }
class T { static void main() { P p = new P(3); } }
`)
	m := p.Method(bytecode.MethodRef{Class: "T", Name: "main"})
	want := []bytecode.Op{
		bytecode.OpNewInstance, bytecode.OpDup, bytecode.OpConst, bytecode.OpInvoke,
		bytecode.OpStore, bytecode.OpReturn,
	}
	got := ops(m)
	if len(got) != len(want) {
		t.Fatalf("ops = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d = %v, want %v\n%s", i, got[i], want[i], bytecode.Disassemble(m))
		}
	}
	if m.Code[3].Method.Name != "<init>" {
		t.Error("invoke should target the constructor")
	}
}

func TestCompileNoCtorOmitsInvoke(t *testing.T) {
	p := compile(t, `
class P { int x; }
class T { static void main() { P p = new P(); } }
`)
	m := p.Method(bytecode.MethodRef{Class: "T", Name: "main"})
	for _, in := range m.Code {
		if in.Op == bytecode.OpInvoke {
			t.Fatal("ctor-less allocation should not emit invoke")
		}
	}
}

func TestCompileDefaultInitLocals(t *testing.T) {
	p := compile(t, `
class T { static void main() { int a; boolean b; T r; int[] xs; } }
`)
	m := p.Method(bytecode.MethodRef{Class: "T", Name: "main"})
	got := ops(m)
	want := []bytecode.Op{
		bytecode.OpConst, bytecode.OpStore,
		bytecode.OpConstBool, bytecode.OpStore,
		bytecode.OpConstNull, bytecode.OpStore,
		bytecode.OpConstNull, bytecode.OpStore,
		bytecode.OpReturn,
	}
	if len(got) != len(want) {
		t.Fatalf("ops = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCompileFieldAndStaticStores(t *testing.T) {
	p := compile(t, `
class T {
    T next;
    static T head;
    void link(T n) { next = n; head = this; }
}
`)
	m := p.Method(bytecode.MethodRef{Class: "T", Name: "link"})
	dis := bytecode.Disassemble(m)
	for _, want := range []string{"load 0", "load 1", "putfield T.next", "putstatic T.head"} {
		if !strings.Contains(dis, want) {
			t.Errorf("missing %q in:\n%s", want, dis)
		}
	}
}

func TestCompileArrayStoreKinds(t *testing.T) {
	p := compile(t, `
class T {
    static void main() {
        int[] a = new int[3];
        T[] b = new T[3];
        a[0] = 1;
        b[0] = null;
        int x = a[1];
        T y = b[1];
    }
}
`)
	m := p.Method(bytecode.MethodRef{Class: "T", Name: "main"})
	var haveIAS, haveAAS, haveIAL, haveAAL bool
	for _, in := range m.Code {
		switch in.Op {
		case bytecode.OpIAStore:
			haveIAS = true
		case bytecode.OpAAStore:
			haveAAS = true
		case bytecode.OpIALoad:
			haveIAL = true
		case bytecode.OpAALoad:
			haveAAL = true
		}
	}
	if !haveIAS || !haveAAS || !haveIAL || !haveAAL {
		t.Errorf("array op coverage: iastore=%v aastore=%v iaload=%v aaload=%v", haveIAS, haveAAS, haveIAL, haveAAL)
	}
}

func TestCompileShortCircuit(t *testing.T) {
	p := compile(t, `
class T { static boolean f(boolean a, boolean b) { return a && b || a; } }
`)
	m := p.Method(bytecode.MethodRef{Class: "T", Name: "f"})
	// Short-circuit uses dup + conditional branch + pop.
	var dups, pops, branches int
	for _, in := range m.Code {
		switch in.Op {
		case bytecode.OpDup:
			dups++
		case bytecode.OpPop:
			pops++
		case bytecode.OpIfTrue, bytecode.OpIfFalse:
			branches++
		}
	}
	if dups != 2 || pops != 2 || branches != 2 {
		t.Errorf("short-circuit shape: dup=%d pop=%d branch=%d\n%s", dups, pops, branches, bytecode.Disassemble(m))
	}
}

func TestCompileRefVsIntEquality(t *testing.T) {
	p := compile(t, `
class T { static void main() {
    T a = null;
    boolean r1 = a == null;
    boolean r2 = 1 == 2;
    boolean r3 = true != false;
} }
`)
	m := p.Method(bytecode.MethodRef{Class: "T", Name: "main"})
	var refEq, cmpEq, cmpNe int
	for _, in := range m.Code {
		switch in.Op {
		case bytecode.OpRefEQ:
			refEq++
		case bytecode.OpCmpEQ:
			cmpEq++
		case bytecode.OpCmpNE:
			cmpNe++
		}
	}
	if refEq != 1 || cmpEq != 1 || cmpNe != 1 {
		t.Errorf("equality lowering: refeq=%d cmpeq=%d cmpne=%d", refEq, cmpEq, cmpNe)
	}
}

func TestCompileValueMethodEndsInTrap(t *testing.T) {
	p := compile(t, `
class T { static int f(boolean c) { if (c) return 1; return 0; } }
`)
	m := p.Method(bytecode.MethodRef{Class: "T", Name: "f"})
	last := m.Code[len(m.Code)-1]
	if last.Op != bytecode.OpTrap {
		t.Errorf("last op = %v, want trap", last.Op)
	}
}

func TestCompileWhileLoopShape(t *testing.T) {
	p := compile(t, `
class T { static int f(int n) { int s = 0; int i = 0; while (i < n) { s = s + i; i = i + 1; } return s; } }
`)
	m := p.Method(bytecode.MethodRef{Class: "T", Name: "f"})
	// Find the backward goto.
	var backward bool
	for pc, in := range m.Code {
		if in.Op == bytecode.OpGoto && int(in.A) < pc {
			backward = true
		}
	}
	if !backward {
		t.Errorf("while loop should contain a backward goto:\n%s", bytecode.Disassemble(m))
	}
}

func TestCompileSpawn(t *testing.T) {
	p := compile(t, `
class W { void run() { } }
class T { static void main() { W w = new W(); spawn w.run(); } }
`)
	m := p.Method(bytecode.MethodRef{Class: "T", Name: "main"})
	var found bool
	for _, in := range m.Code {
		if in.Op == bytecode.OpSpawn && in.Method.Name == "run" {
			found = true
		}
	}
	if !found {
		t.Error("spawn instruction missing")
	}
}

func TestCompilePopsUnusedCallResult(t *testing.T) {
	p := compile(t, `
class T { static int f() { return 1; } static void main() { T.f(); } }
`)
	m := p.Method(bytecode.MethodRef{Class: "T", Name: "main"})
	got := ops(m)
	want := []bytecode.Op{bytecode.OpInvoke, bytecode.OpPop, bytecode.OpReturn}
	if len(got) != len(want) {
		t.Fatalf("ops = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCompileImplicitThisCall(t *testing.T) {
	p := compile(t, `
class T { void a() { b(); } void b() { } }
`)
	m := p.Method(bytecode.MethodRef{Class: "T", Name: "a"})
	got := ops(m)
	want := []bytecode.Op{bytecode.OpLoad, bytecode.OpInvoke, bytecode.OpReturn}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ops = %v, want %v", got, want)
		}
	}
}

func TestCompilePaperExpandExample(t *testing.T) {
	p := compile(t, `
class T { int v; }
class Util {
    static T[] expand(T[] ta) {
        T[] new_ta = new T[ta.length * 2];
        for (int i = 0; i < ta.length; i = i + 1)
            new_ta[i] = ta[i];
        return new_ta;
    }
}
`)
	m := p.Method(bytecode.MethodRef{Class: "Util", Name: "expand"})
	dis := bytecode.Disassemble(m)
	for _, want := range []string{"newarray T", "aastore", "aaload", "arraylength"} {
		if !strings.Contains(dis, want) {
			t.Errorf("missing %q in:\n%s", want, dis)
		}
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

// TestCompileKitchenSink drives the remaining lowering paths: statics in
// expressions, instance-field reads via bare identifiers, nested unary
// operators, boolean fields, for loops without clauses, and spawn.
func TestCompileKitchenSink(t *testing.T) {
	p := compile(t, `
class Pair {
    int x;
    boolean flag;
    Pair other;
    static Pair cache;
    static int hits;

    Pair(int x0) { x = x0; }

    void touch() {
        x = -x;
        flag = !flag;
        other = this;
        Pair.cache = this;
        Pair.hits = Pair.hits + 1;
    }

    int poll() {
        if (flag && other != null) return other.x;
        return -(-x);
    }
}
class Main {
    static void main() {
        Pair p = new Pair(4);
        p.touch();
        print(p.poll());
        int guard = 0;
        for (;;) {
            guard = guard + 1;
            if (guard >= 3) { print(guard); return; }
        }
    }
}
`)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	m := p.Method(bytecode.MethodRef{Class: "Pair", Name: "touch"})
	dis := bytecode.Disassemble(m)
	for _, want := range []string{"putstatic Pair.cache", "getstatic Pair.hits", "putfield Pair.other", "not"} {
		if !strings.Contains(dis, want) {
			t.Errorf("missing %q in touch:\n%s", want, dis)
		}
	}
}

func TestCompileSpawnLowering(t *testing.T) {
	p := compile(t, `
class W { void run() { } }
class Main { static void main() { W w = new W(); spawn w.run(); } }
`)
	m := p.Method(bytecode.MethodRef{Class: "Main", Name: "main"})
	found := false
	for pc := range m.Code {
		if m.Code[pc].Op == bytecode.OpSpawn {
			found = true
		}
	}
	if !found {
		t.Error("spawn not lowered")
	}
}

func TestCompileStaticFieldAssignViaBareName(t *testing.T) {
	p := compile(t, `
class C {
    static C head;
    C next;
    static void push() {
        C c = new C();
        c.next = head;   // bare static read
        head = c;        // bare static write
    }
    static void main() { C.push(); }
}
`)
	m := p.Method(bytecode.MethodRef{Class: "C", Name: "push"})
	dis := bytecode.Disassemble(m)
	for _, want := range []string{"getstatic C.head", "putstatic C.head", "putfield C.next"} {
		if !strings.Contains(dis, want) {
			t.Errorf("missing %q:\n%s", want, dis)
		}
	}
}

func TestCompileNestedIndexAssignment(t *testing.T) {
	p := compile(t, `
class T { int v; }
class Main {
    static void main() {
        T[][] g = new T[2][];
        g[0] = new T[2];
        g[0][1] = new T();
        g[0][1].v = 9;
        print(g[0][1].v);
    }
}
`)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
