module satbelim

go 1.22
