// Command satbd runs the compile-and-run daemon (serve mode) or its
// load/chaos client (-loadtest).
//
// Serve:
//
//	satbd -addr 127.0.0.1:8344 [-workers N] [-queue N] [-obs]
//	      [-faults 'slow=0.05:2ms,panic=0.02' -fault-seed 7]
//
// Load test (boots an in-process daemon unless -url points elsewhere):
//
//	satbd -loadtest -n 200 -c 8 [-verify] [-faults ...] [-json out.json]
//
// The load test exits non-zero if any response violated the daemon's
// contract: schema-invalid body, outcome/status mismatch, unflagged
// degradation, silently-wrong output, or an unreachable daemon.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"satbelim/internal/cli"
	"satbelim/internal/core"
	"satbelim/internal/faultinject"
	"satbelim/internal/obs"
	"satbelim/internal/report"
	"satbelim/internal/satbd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "satbd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", "127.0.0.1:8344", "listen address (serve mode)")
		workers     = flag.Int("workers", 0, "concurrent request slots (0 = NumCPU)")
		queue       = flag.Int("queue", 0, "admission queue depth beyond the slots (0 = 4x workers)")
		deadline    = flag.Duration("deadline", 2*time.Second, "default per-request deadline")
		maxDeadline = flag.Duration("max-deadline", 10*time.Second, "ceiling on client-requested deadlines")
		inline      = flag.Int("inline", 100, "inline limit for daemon compiles")
		mode        = flag.String("mode", "A", "analysis mode: B, F, or A")
		cacheSize   = flag.Int("cache-entries", 512, "build cache capacity")
		visits      = flag.Int("max-block-visits", 0, "tier-0 analysis visit budget (0 = default)")
		obsOn       = flag.Bool("obs", false, "enable the observability collector (/metrics spans, /trace)")

		faults    = flag.String("faults", "", "fault-injection spec, e.g. 'slow=0.1:5ms,cachefail=0.2,panic=0.05,stall=0.1:10ms'")
		faultSeed = flag.Int64("fault-seed", 1, "fault-injection PRNG seed")

		loadtest = flag.Bool("loadtest", false, "run the load/chaos client instead of serving")
		n        = flag.Int("n", 200, "loadtest: number of requests")
		c        = flag.Int("c", 8, "loadtest: concurrency")
		seed     = flag.Int64("seed", 1, "loadtest: base progen seed")
		reqDL    = flag.Int64("deadline-ms", 0, "loadtest: per-request deadline_ms (0 = server default)")
		verify   = flag.Bool("verify", true, "loadtest: re-run /run responses locally and compare outputs")
		url      = flag.String("url", "", "loadtest: target an already-running daemon instead of booting one")
		jsonOut  = flag.String("json", "", "loadtest: write the load report as versioned JSON")
	)
	flag.Parse()

	m, err := core.ParseMode(*mode)
	if err != nil {
		return err
	}
	var inj *faultinject.Injector
	if *faults != "" {
		fc, err := faultinject.ParseSpec(*faults)
		if err != nil {
			return err
		}
		fc.Seed = *faultSeed
		inj = faultinject.New(fc)
	}
	if *obsOn {
		obs.Enable()
	}
	cfg := satbd.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		InlineLimit:     *inline,
		Mode:            m,
		CacheEntries:    *cacheSize,
		MaxBlockVisits:  *visits,
		Inject:          inj,
	}

	if *loadtest {
		return runLoadtest(cfg, satbd.LoadConfig{
			BaseURL:       *url,
			Programs:      *n,
			Concurrency:   *c,
			Seed:          *seed,
			DeadlineMS:    *reqDL,
			VerifyOutputs: *verify,
		}, inj, *jsonOut)
	}
	return serve(*addr, cfg)
}

// serve runs the daemon until SIGINT/SIGTERM, then drains connections.
func serve(addr string, cfg satbd.Config) error {
	s := satbd.New(cfg)
	srv := &http.Server{Addr: addr, Handler: s.Handler()}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "satbd: listening on %s (workers=%d queue=%d)\n",
			addr, s.Stats().Workers, s.Stats().QueueDepth)
		errc <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "satbd: %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		st := s.Stats()
		fmt.Fprintf(os.Stderr, "satbd: served %d requests (%d ok, %d degraded, %d shed, %d timeouts, %d errors, %d panics)\n",
			st.Requests, st.OK, st.Degraded, st.Shed, st.Timeouts, st.Errors, st.Panics)
		return nil
	}
}

// runLoadtest drives a load run, printing the outcome table and writing
// the JSON document. With no -url it boots an in-process daemon on a
// loopback port so the whole loop (including fault injection) is one
// command.
func runLoadtest(cfg satbd.Config, lc satbd.LoadConfig, inj *faultinject.Injector, jsonOut string) error {
	var stats func() report.SatbdStats
	if lc.BaseURL == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		s := satbd.New(cfg)
		stats = s.Stats
		srv := &http.Server{Handler: s.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		lc.BaseURL = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "satbd: in-process daemon on %s\n", lc.BaseURL)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	load, err := satbd.RunLoad(ctx, lc)
	if err != nil && !errors.Is(err, context.Canceled) {
		return err
	}

	fmt.Printf("satbd loadtest: %d/%d requests in %v\n",
		load.Sent, load.Programs, time.Duration(load.ElapsedNS).Round(time.Millisecond))
	outcomes := make([]string, 0, len(load.ByOutcome))
	for k := range load.ByOutcome {
		outcomes = append(outcomes, k)
	}
	sort.Strings(outcomes)
	for _, k := range outcomes {
		if lat, ok := load.Latency[k]; ok {
			fmt.Printf("  %-10s %6d   p50 %-9v p95 %-9v p99 %-9v max %v\n",
				k, load.ByOutcome[k],
				time.Duration(lat.P50NS).Round(time.Microsecond),
				time.Duration(lat.P95NS).Round(time.Microsecond),
				time.Duration(lat.P99NS).Round(time.Microsecond),
				time.Duration(lat.MaxNS).Round(time.Microsecond))
			continue
		}
		fmt.Printf("  %-10s %6d\n", k, load.ByOutcome[k])
	}
	if load.OutputsVerified > 0 {
		fmt.Printf("  outputs verified against local baseline: %d\n", load.OutputsVerified)
	}
	if inj != nil {
		fmt.Printf("  faults injected: %s\n", inj.Summary())
	}

	doc := report.NewDocument("satbd")
	doc.Satbd = &report.Satbd{Load: load}
	if stats != nil {
		st := stats()
		doc.Satbd.Stats = &st
	}
	if jsonOut != "" {
		if err := cli.WriteDocument(jsonOut, doc); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "satbd: wrote %s\n", jsonOut)
	}

	if len(load.Invalid) > 0 {
		for _, v := range load.Invalid {
			fmt.Fprintf(os.Stderr, "VIOLATION: %s\n", v)
		}
		return fmt.Errorf("%d contract violations", len(load.Invalid))
	}
	fmt.Println("  contract: every response schema-valid, degradations flagged, no silent wrong answers")
	return nil
}
