// Command satbtest is the metamorphic conformance harness front-end: it
// generates campaign program corpora (progen with every idiom knob on),
// checks each program against the property library (engine / barrier-mode
// / inline invariance, the runtime elision oracle, dead-store logged-
// barrier monotonicity, independent-statement reordering), shrinks every
// counterexample to a minimal repro, and emits replayable artifacts.
//
// Modes (exactly one):
//
//	satbtest -campaign [-seeds N] [-base N] [-budget 2m] [-out DIR] [-json FILE]
//	satbtest -seed N          replay one generator seed through the properties
//	satbtest -repro FILE.mj   replay a shrunk counterexample source file
//
// Exit status: 0 clean, 1 counterexamples found (or an internal error), 2
// usage. The -unsound-skip-b-demotion flag injects a known soundness bug
// into the analysis (skipping the R/A→R/B allocation-site demotion) so
// the harness itself can be validated end-to-end: a campaign under that
// flag MUST fail. -unsound-trust-all-summaries does the same for the
// interprocedural layer (summaries trusted after one optimistic round).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"satbelim/internal/cli"
	"satbelim/internal/core"
	"satbelim/internal/metatest"
	"satbelim/internal/progen"
	"satbelim/internal/report"
)

func main() {
	campaign := flag.Bool("campaign", false, "run a generator campaign over consecutive seeds")
	seeds := flag.Int("seeds", 250, "number of campaign seeds")
	base := flag.Int64("base", 0, "first campaign seed")
	seed := flag.Int64("seed", -1, "replay one generator seed (exclusive with -campaign/-repro)")
	repro := flag.String("repro", "", "replay a counterexample source file")
	props := flag.String("props", "", "comma-separated property subset (default all: "+
		strings.Join(metatest.PropertyNames(), ",")+")")
	budget := flag.Duration("budget", 0, "campaign wall-clock budget (0 = unlimited)")
	outDir := flag.String("out", "", "directory for repro artifacts (created if missing)")
	jsonPath := flag.String("json", "", "write the campaign summary as versioned JSON to this file")
	mode := flag.String("mode", "A", "analysis mode: B, F, or A")
	nullOrSame := flag.Bool("nullorsame", false, "enable the null-or-same extension")
	maxFailures := flag.Int("max-failures", 10, "stop the campaign after this many failures")
	interproc := flag.Bool("interproc", false, "enable interprocedural method summaries")
	injectSkipB := flag.Bool("unsound-skip-b-demotion", false,
		"inject a known soundness bug (skip the R/A->R/B demotion) to validate the harness")
	injectTrustAll := flag.Bool("unsound-trust-all-summaries", false,
		"inject a known soundness bug (trust cyclic-SCC summaries after one round; implies -interproc) to validate the harness")
	var ob cli.Obs
	ob.RegisterFlags()
	flag.Parse()

	modes := 0
	for _, on := range []bool{*campaign, *seed >= 0, *repro != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 || flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: satbtest -campaign [-seeds N] | satbtest -seed N | satbtest -repro FILE.mj")
		flag.PrintDefaults()
		os.Exit(2)
	}

	am, err := core.ParseMode(*mode)
	if err != nil {
		fatal(err)
	}
	analysis := core.Options{
		Mode:                     am,
		NullOrSame:               *nullOrSame,
		Interprocedural:          *interproc || *injectTrustAll,
		UnsoundSkipBDemotion:     *injectSkipB,
		UnsoundTrustAllSummaries: *injectTrustAll,
	}
	var propNames []string
	if *props != "" {
		propNames = strings.Split(*props, ",")
	}

	ob.Start()
	failed := false
	switch {
	case *repro != "":
		data, err := os.ReadFile(*repro)
		if err != nil {
			fatal(err)
		}
		vs, err := metatest.CheckSource(string(data), analysis, propNames)
		if err != nil {
			fatal(err)
		}
		failed = reportViolations(*repro, vs)
	case *seed >= 0:
		src, vs, err := metatest.ReplaySeed(*seed, progen.Config{}, analysis, propNames)
		if err != nil {
			fatal(err)
		}
		if len(vs) > 0 && *outDir != "" {
			if path, werr := writeArtifact(*outDir, fmt.Sprintf("seed%d.mj", *seed), src); werr != nil {
				fatal(werr)
			} else {
				fmt.Printf("wrote %s\n", path)
			}
		}
		failed = reportViolations(fmt.Sprintf("seed %d", *seed), vs)
	default:
		failed = runCampaign(metatest.Options{
			Base:        *base,
			Seeds:       *seeds,
			Analysis:    analysis,
			Props:       propNames,
			Budget:      *budget,
			MaxFailures: *maxFailures,
			Log: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "satbtest: "+format+"\n", args...)
			},
		}, *outDir, *jsonPath)
	}
	if err := ob.Finish("satbtest"); err != nil {
		fatal(err)
	}
	if failed {
		os.Exit(1)
	}
}

// runCampaign executes the campaign, writes artifacts and the JSON
// document, and reports whether any counterexample was found.
func runCampaign(opts metatest.Options, outDir, jsonPath string) bool {
	res, err := metatest.RunCampaign(opts)
	if err != nil {
		fatal(err)
	}
	summary := &report.CampaignSummary{
		BaseSeed:        opts.Base,
		SeedsRun:        res.SeedsRun,
		Checks:          res.Checks,
		Properties:      opts.Props,
		BudgetExhausted: res.BudgetExhausted,
		ElapsedNs:       res.Elapsed.Nanoseconds(),
	}
	if summary.Properties == nil {
		summary.Properties = metatest.PropertyNames()
	}
	for _, f := range res.Failures {
		cf := report.CampaignFailure{
			Seed:         f.Seed,
			Property:     f.Property,
			Message:      f.Message,
			ReproLines:   f.ReproLines,
			ShrinkChecks: f.ShrinkChecks,
			Repro:        f.Repro,
		}
		if outDir != "" {
			name := fmt.Sprintf("seed%d-%s.mj", f.Seed, f.Property)
			path, err := writeArtifact(outDir, name, f.Repro)
			if err != nil {
				fatal(err)
			}
			if _, err := writeArtifact(outDir, fmt.Sprintf("seed%d-%s-full.mj", f.Seed, f.Property), f.Source); err != nil {
				fatal(err)
			}
			cf.ReproFile = path
		}
		summary.Failures = append(summary.Failures, cf)
		fmt.Printf("FAIL seed %d %s: %s\n  repro (%d lines, replay with: satbtest -repro %s):\n%s\n",
			f.Seed, f.Property, f.Message, f.ReproLines,
			orStdin(cf.ReproFile), indent(f.Repro))
	}
	status := "clean"
	if len(res.Failures) > 0 {
		status = fmt.Sprintf("%d FAILURES", len(res.Failures))
	}
	suffix := ""
	if res.BudgetExhausted {
		suffix = " (budget exhausted)"
	}
	fmt.Printf("campaign: %s — %d seeds, %d property checks in %v%s\n",
		status, res.SeedsRun, res.Checks, res.Elapsed.Round(1e6), suffix)

	if jsonPath != "" {
		doc := report.NewDocument("satbtest")
		doc.Campaign = summary
		if err := cli.WriteDocument(jsonPath, doc); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "satbtest: wrote %s\n", jsonPath)
	}
	return len(res.Failures) > 0
}

// reportViolations prints replay findings; true means some property
// failed.
func reportViolations(what string, vs []*metatest.Violation) bool {
	if len(vs) == 0 {
		fmt.Printf("%s: all properties hold\n", what)
		return false
	}
	for _, v := range vs {
		fmt.Printf("FAIL %s %s: %s\n", what, v.Prop, v.Msg)
	}
	return true
}

// writeArtifact writes content under dir (created if missing), returning
// the file path.
func writeArtifact(dir, name, content string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := dir + string(os.PathSeparator) + name
	if err := cli.WriteFileAtomic(path, []byte(content)); err != nil {
		return "", err
	}
	return path, nil
}

func orStdin(path string) string {
	if path == "" {
		return "FILE.mj"
	}
	return path
}

func indent(s string) string {
	return "    " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n    ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "satbtest:", err)
	os.Exit(1)
}
