// Command satbbench regenerates the paper's evaluation artifacts over the
// built-in workload suite: Table 1 (dynamic eliminations), Table 2 (jbb
// end-to-end barrier cost), Figure 2 (inline-limit sweep), Figure 3
// (compiled code size), the §4.3 null-or-same measurements, the
// compile-side performance snapshot (per-stage times + fixed-point block
// visits), and the soundness-oracle sweep (-oracle: every workload run
// with runtime validation of each elided store).
//
// With -json FILE every computed section is additionally written as a
// machine-readable JSON document (e.g. BENCH_satb.json), so the perf
// trajectory can be compared across revisions. The file is written
// atomically (temp file + rename), so a crashed or interrupted run never
// leaves a truncated document behind.
//
// -deadline D applies a per-method analysis wall-clock budget: methods
// exceeding it degrade to the sound all-barriers result. -strict exits
// nonzero if any method degraded or the oracle found a violation, for CI
// gating.
//
// Usage:
//
//	satbbench -all
//	satbbench -table1 -fig3
//	satbbench -all -json BENCH_satb.json
//	satbbench -oracle -strict -deadline 2s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"satbelim/internal/pipeline"
	"satbelim/internal/report"
)

// jsonResults is the -json document: one optional section per experiment.
type jsonResults struct {
	InlineLimit     int                    `json:"inline_limit"`
	Workers         int                    `json:"workers"`
	Perf            []report.PerfRow       `json:"perf,omitempty"`
	Table1          []report.Table1Row     `json:"table1,omitempty"`
	Table2          []report.Table2Row     `json:"table2,omitempty"`
	Figure2         []report.Fig2Point     `json:"figure2,omitempty"`
	Figure3         []report.Fig3Row       `json:"figure3,omitempty"`
	NullOrSame      []report.NullOrSameRow `json:"null_or_same,omitempty"`
	Rearrange       []report.RearrangeRow  `json:"rearrange,omitempty"`
	Interprocedural []report.InterprocRow  `json:"interprocedural,omitempty"`
	Oracle          []report.OracleRow     `json:"oracle,omitempty"`
	VMPerf          []report.VMPerfRow     `json:"vmperf,omitempty"`
	// VMPerfGeomeanSpeedup is the geometric-mean fused-over-switch VM
	// speedup across workloads (present with the vmperf section).
	VMPerfGeomeanSpeedup float64 `json:"vmperf_geomean_speedup,omitempty"`
	// BuildCache reports build-cache effectiveness over the whole run.
	BuildCache pipeline.CacheStats `json:"build_cache"`
}

func main() {
	all := flag.Bool("all", false, "run every experiment")
	t1 := flag.Bool("table1", false, "Table 1: dynamic barrier elimination")
	t2 := flag.Bool("table2", false, "Table 2: jbb end-to-end barrier cost")
	f2 := flag.Bool("fig2", false, "Figure 2: inline limit sweep")
	f3 := flag.Bool("fig3", false, "Figure 3: compiled code size")
	nos := flag.Bool("nullorsame", false, "§4.3 null-or-same measurements")
	rearr := flag.Bool("rearrange", false, "§4.3 array-rearrangement measurements")
	interp := flag.Bool("interprocedural", false, "escape-summary recovery at inline limit 0")
	perf := flag.Bool("perf", false, "compile-side performance snapshot (stage times, block visits)")
	vmperf := flag.Bool("vmperf", false, "VM execution-engine performance (fused vs switch: instr/s, ns/instr, allocs/op)")
	oracle := flag.Bool("oracle", false, "soundness oracle: validate every elided store at runtime")
	inlineLimit := flag.Int("inline", report.DefaultInlineLimit, "inline limit for Table 1/2, Figure 3, perf, oracle")
	workers := flag.Int("workers", 0, "per-method analysis fan-out (0 = GOMAXPROCS)")
	deadline := flag.Duration("deadline", 0, "per-method analysis wall-clock budget (0 = unlimited); over-budget methods keep all barriers")
	strict := flag.Bool("strict", false, "exit nonzero if any method degraded or the oracle found a violation (implies -oracle)")
	jsonPath := flag.String("json", "", "also write results as JSON to this file (e.g. BENCH_satb.json)")
	flag.Parse()

	if *strict {
		*oracle = true
	}
	if *all {
		*t1, *t2, *f2, *f3, *nos, *rearr, *interp, *perf, *vmperf, *oracle = true, true, true, true, true, true, true, true, true, true
	}
	if !*t1 && !*t2 && !*f2 && !*f3 && !*nos && !*rearr && !*interp && !*perf && !*vmperf && !*oracle {
		fmt.Fprintln(os.Stderr, "usage: satbbench [-all] [-table1] [-table2] [-fig2] [-fig3] [-nullorsame] [-rearrange] [-interprocedural] [-perf] [-vmperf] [-oracle] [-strict] [-deadline D] [-json FILE]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	report.AnalysisDeadline = *deadline

	out := &jsonResults{InlineLimit: *inlineLimit, Workers: *workers}

	if *perf {
		rows, err := report.Perf(*inlineLimit, *workers)
		if err != nil {
			fatal(err)
		}
		out.Perf = rows
		fmt.Println(report.FormatPerf(rows))
	}
	if *t1 {
		rows, err := report.Table1(*inlineLimit)
		if err != nil {
			fatal(err)
		}
		out.Table1 = rows
		fmt.Println(report.FormatTable1(rows))
	}
	if *t2 {
		rows, err := report.Table2(*inlineLimit)
		if err != nil {
			fatal(err)
		}
		out.Table2 = rows
		fmt.Println(report.FormatTable2(rows))
	}
	if *f2 {
		points, err := report.Figure2(nil)
		if err != nil {
			fatal(err)
		}
		out.Figure2 = points
		fmt.Println(report.FormatFigure2(points))
	}
	if *f3 {
		rows, err := report.Figure3(*inlineLimit)
		if err != nil {
			fatal(err)
		}
		out.Figure3 = rows
		fmt.Println(report.FormatFigure3(rows))
	}
	if *nos {
		rows, err := report.NullOrSame(*inlineLimit)
		if err != nil {
			fatal(err)
		}
		out.NullOrSame = rows
		fmt.Println(report.FormatNullOrSame(rows))
	}
	if *rearr {
		rows, err := report.Rearrangement(*inlineLimit)
		if err != nil {
			fatal(err)
		}
		out.Rearrange = rows
		fmt.Println(report.FormatRearrangement(rows))
	}
	if *interp {
		rows, err := report.Interprocedural()
		if err != nil {
			fatal(err)
		}
		out.Interprocedural = rows
		fmt.Println(report.FormatInterprocedural(rows))
	}
	if *vmperf {
		rows, err := report.VMPerf(*inlineLimit)
		if err != nil {
			fatal(err)
		}
		out.VMPerf = rows
		out.VMPerfGeomeanSpeedup = report.VMPerfGeomeanSpeedup(rows)
		fmt.Println(report.FormatVMPerf(rows))
	}
	var oracleFailed bool
	if *oracle {
		rows, err := report.Oracle(*inlineLimit)
		if err != nil {
			fatal(err)
		}
		out.Oracle = rows
		fmt.Println(report.FormatOracle(rows))
		for _, r := range rows {
			if !r.Clean() || len(r.Degraded) > 0 {
				oracleFailed = true
			}
		}
	}

	out.BuildCache = pipeline.Stats()

	if *jsonPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if err := writeFileAtomic(*jsonPath, data); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "satbbench: wrote %s\n", *jsonPath)
	}

	if *strict && oracleFailed {
		fmt.Fprintln(os.Stderr, "satbbench: -strict: oracle violations or degraded methods present")
		os.Exit(1)
	}
}

// writeFileAtomic writes data to path via a temp file in the same
// directory plus rename, so readers never observe a partial document and
// an interrupted run leaves the previous file intact.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "satbbench:", err)
	os.Exit(1)
}
