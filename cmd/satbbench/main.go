// Command satbbench regenerates the paper's evaluation artifacts over the
// built-in workload suite: Table 1 (dynamic eliminations), Table 2 (jbb
// end-to-end barrier cost), Figure 2 (inline-limit sweep), Figure 3
// (compiled code size), the §4.3 null-or-same measurements, the
// compile-side performance snapshot (per-stage times + fixed-point block
// visits), the soundness-oracle sweep (-oracle: every workload run
// with runtime validation of each elided store), and the cross-flavor
// barrier matrix (-barriers: every workload under every barrier flavor —
// conditional, always-log, yuasa, dijkstra, hybrid, card — comparing
// per-flavor elimination rates and end-to-end barrier cost).
//
// With -json FILE every computed section is additionally written as a
// versioned report.Document (e.g. BENCH_satb.json), so the perf
// trajectory can be compared across revisions. The file is written
// atomically (temp file + rename), so a crashed or interrupted run never
// leaves a truncated document behind.
//
// -trace FILE records every pipeline stage, per-method analysis span, VM
// run and GC cycle as a Chrome trace_event JSON file (open in Perfetto);
// -metrics FILE writes the aggregated span/counter rollup. Both exports
// are off by default, in which case every instrumentation hook stays on
// its zero-allocation disabled path.
//
// -deadline D applies a per-method analysis wall-clock budget: methods
// exceeding it degrade to the sound all-barriers result. -strict exits
// nonzero if any method degraded or the oracle found a violation, for CI
// gating.
//
// Usage:
//
//	satbbench -all
//	satbbench -table1 -fig3
//	satbbench -all -json BENCH_satb.json
//	satbbench -table1 -trace trace.json -metrics metrics.json
//	satbbench -oracle -strict -deadline 2s
package main

import (
	"flag"
	"fmt"
	"os"

	"satbelim/internal/cli"
	"satbelim/internal/pipeline"
	"satbelim/internal/report"
)

func main() {
	all := flag.Bool("all", false, "run every experiment")
	t1 := flag.Bool("table1", false, "Table 1: dynamic barrier elimination")
	t2 := flag.Bool("table2", false, "Table 2: jbb end-to-end barrier cost")
	f2 := flag.Bool("fig2", false, "Figure 2: inline limit sweep")
	f3 := flag.Bool("fig3", false, "Figure 3: compiled code size")
	nos := flag.Bool("nullorsame", false, "§4.3 null-or-same measurements")
	rearr := flag.Bool("rearrange", false, "§4.3 array-rearrangement measurements")
	barriers := flag.Bool("barriers", false, "cross-flavor barrier matrix (yuasa/dijkstra/hybrid/... elimination and cost per workload)")
	interp := flag.Bool("interprocedural", false, "escape-summary recovery at inline limit 0")
	interpAlias := flag.Bool("interproc", false, "alias for -interprocedural")
	perf := flag.Bool("perf", false, "compile-side performance snapshot (stage times, block visits)")
	vmperf := flag.Bool("vmperf", false, "VM execution-engine performance (compiled vs fused vs switch: instr/s, ns/instr, allocs/op, tier counters)")
	oracle := flag.Bool("oracle", false, "soundness oracle: validate every elided store at runtime")
	inlineLimit := flag.Int("inline", report.DefaultInlineLimit, "inline limit for Table 1/2, Figure 3, perf, oracle")
	workers := flag.Int("workers", 0, "per-method analysis fan-out (0 = GOMAXPROCS)")
	deadline := flag.Duration("deadline", 0, "per-method analysis wall-clock budget (0 = unlimited); over-budget methods keep all barriers")
	strict := flag.Bool("strict", false, "exit nonzero if any method degraded or the oracle found a violation (implies -oracle)")
	jsonPath := flag.String("json", "", "also write results as JSON to this file (e.g. BENCH_satb.json)")
	var ob cli.Obs
	ob.RegisterFlags()
	flag.Parse()

	if *strict {
		*oracle = true
	}
	if *interpAlias {
		*interp = true
	}
	if *all {
		*t1, *t2, *f2, *f3, *nos, *rearr, *barriers, *interp, *perf, *vmperf, *oracle = true, true, true, true, true, true, true, true, true, true, true
	}
	if !*t1 && !*t2 && !*f2 && !*f3 && !*nos && !*rearr && !*barriers && !*interp && !*perf && !*vmperf && !*oracle {
		fmt.Fprintln(os.Stderr, "usage: satbbench [-all] [-table1] [-table2] [-fig2] [-fig3] [-nullorsame] [-rearrange] [-barriers] [-interprocedural] [-perf] [-vmperf] [-oracle] [-strict] [-deadline D] [-json FILE] [-trace FILE] [-metrics FILE]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	report.AnalysisDeadline = *deadline
	ob.Start()

	out := report.NewDocument("satbbench")
	out.InlineLimit = *inlineLimit
	out.Workers = *workers

	if *perf {
		rows, err := report.Perf(*inlineLimit, *workers)
		if err != nil {
			fatal(err)
		}
		out.Perf = rows
		fmt.Println(report.FormatPerf(rows))
	}
	if *t1 {
		rows, err := report.Table1(*inlineLimit)
		if err != nil {
			fatal(err)
		}
		out.Table1 = rows
		fmt.Println(report.FormatTable1(rows))
	}
	if *t2 {
		rows, err := report.Table2(*inlineLimit)
		if err != nil {
			fatal(err)
		}
		out.Table2 = rows
		fmt.Println(report.FormatTable2(rows))
	}
	if *f2 {
		points, err := report.Figure2(nil)
		if err != nil {
			fatal(err)
		}
		out.Figure2 = points
		fmt.Println(report.FormatFigure2(points))
	}
	if *f3 {
		rows, err := report.Figure3(*inlineLimit)
		if err != nil {
			fatal(err)
		}
		out.Figure3 = rows
		fmt.Println(report.FormatFigure3(rows))
	}
	if *nos {
		rows, err := report.NullOrSame(*inlineLimit)
		if err != nil {
			fatal(err)
		}
		out.NullOrSame = rows
		fmt.Println(report.FormatNullOrSame(rows))
	}
	if *rearr {
		rows, err := report.Rearrangement(*inlineLimit)
		if err != nil {
			fatal(err)
		}
		out.Rearrange = rows
		fmt.Println(report.FormatRearrangement(rows))
	}
	if *barriers {
		rows, err := report.Barriers(*inlineLimit)
		if err != nil {
			fatal(err)
		}
		out.Barriers = rows
		fmt.Println(report.FormatBarriers(rows))
	}
	if *interp {
		rows, err := report.Interprocedural()
		if err != nil {
			fatal(err)
		}
		out.Interprocedural = rows
		fmt.Println(report.FormatInterprocedural(rows))
	}
	if *vmperf {
		rows, err := report.VMPerf(*inlineLimit)
		if err != nil {
			fatal(err)
		}
		out.VMPerf = rows
		out.VMPerfGeomeanSpeedup = report.VMPerfGeomeanSpeedup(rows)
		out.VMPerfGeomeanCompiledOverFused = report.VMPerfGeomeanCompiledOverFused(rows)
		fmt.Println(report.FormatVMPerf(rows))
	}
	var oracleFailed bool
	if *oracle {
		rows, err := report.Oracle(*inlineLimit)
		if err != nil {
			fatal(err)
		}
		out.Oracle = rows
		fmt.Println(report.FormatOracle(rows))
		for _, r := range rows {
			if !r.Clean() || len(r.Degraded) > 0 {
				oracleFailed = true
			}
		}
	}

	cs := pipeline.DefaultCache.Stats()
	out.BuildCache = &cs

	if *jsonPath != "" {
		if err := cli.WriteDocument(*jsonPath, out); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "satbbench: wrote %s\n", *jsonPath)
	}

	if err := ob.Finish("satbbench"); err != nil {
		fatal(err)
	}

	if *strict && oracleFailed {
		fmt.Fprintln(os.Stderr, "satbbench: -strict: oracle violations or degraded methods present")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "satbbench:", err)
	os.Exit(1)
}
