// Command satbbench regenerates the paper's evaluation artifacts over the
// built-in workload suite: Table 1 (dynamic eliminations), Table 2 (jbb
// end-to-end barrier cost), Figure 2 (inline-limit sweep), Figure 3
// (compiled code size), the §4.3 null-or-same measurements, and the
// compile-side performance snapshot (per-stage times + fixed-point block
// visits).
//
// With -json FILE every computed section is additionally written as a
// machine-readable JSON document (e.g. BENCH_satb.json), so the perf
// trajectory can be compared across revisions.
//
// Usage:
//
//	satbbench -all
//	satbbench -table1 -fig3
//	satbbench -all -json BENCH_satb.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"satbelim/internal/report"
)

// jsonResults is the -json document: one optional section per experiment.
type jsonResults struct {
	InlineLimit     int                    `json:"inline_limit"`
	Workers         int                    `json:"workers"`
	Perf            []report.PerfRow       `json:"perf,omitempty"`
	Table1          []report.Table1Row     `json:"table1,omitempty"`
	Table2          []report.Table2Row     `json:"table2,omitempty"`
	Figure2         []report.Fig2Point     `json:"figure2,omitempty"`
	Figure3         []report.Fig3Row       `json:"figure3,omitempty"`
	NullOrSame      []report.NullOrSameRow `json:"null_or_same,omitempty"`
	Rearrange       []report.RearrangeRow  `json:"rearrange,omitempty"`
	Interprocedural []report.InterprocRow  `json:"interprocedural,omitempty"`
}

func main() {
	all := flag.Bool("all", false, "run every experiment")
	t1 := flag.Bool("table1", false, "Table 1: dynamic barrier elimination")
	t2 := flag.Bool("table2", false, "Table 2: jbb end-to-end barrier cost")
	f2 := flag.Bool("fig2", false, "Figure 2: inline limit sweep")
	f3 := flag.Bool("fig3", false, "Figure 3: compiled code size")
	nos := flag.Bool("nullorsame", false, "§4.3 null-or-same measurements")
	rearr := flag.Bool("rearrange", false, "§4.3 array-rearrangement measurements")
	interp := flag.Bool("interprocedural", false, "escape-summary recovery at inline limit 0")
	perf := flag.Bool("perf", false, "compile-side performance snapshot (stage times, block visits)")
	inlineLimit := flag.Int("inline", report.DefaultInlineLimit, "inline limit for Table 1/2, Figure 3, perf")
	workers := flag.Int("workers", 0, "per-method analysis fan-out (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "", "also write results as JSON to this file (e.g. BENCH_satb.json)")
	flag.Parse()

	if *all {
		*t1, *t2, *f2, *f3, *nos, *rearr, *interp, *perf = true, true, true, true, true, true, true, true
	}
	if !*t1 && !*t2 && !*f2 && !*f3 && !*nos && !*rearr && !*interp && !*perf {
		fmt.Fprintln(os.Stderr, "usage: satbbench [-all] [-table1] [-table2] [-fig2] [-fig3] [-nullorsame] [-rearrange] [-interprocedural] [-perf] [-json FILE]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	out := &jsonResults{InlineLimit: *inlineLimit, Workers: *workers}

	if *perf {
		rows, err := report.Perf(*inlineLimit, *workers)
		if err != nil {
			fatal(err)
		}
		out.Perf = rows
		fmt.Println(report.FormatPerf(rows))
	}
	if *t1 {
		rows, err := report.Table1(*inlineLimit)
		if err != nil {
			fatal(err)
		}
		out.Table1 = rows
		fmt.Println(report.FormatTable1(rows))
	}
	if *t2 {
		rows, err := report.Table2(*inlineLimit)
		if err != nil {
			fatal(err)
		}
		out.Table2 = rows
		fmt.Println(report.FormatTable2(rows))
	}
	if *f2 {
		points, err := report.Figure2(nil)
		if err != nil {
			fatal(err)
		}
		out.Figure2 = points
		fmt.Println(report.FormatFigure2(points))
	}
	if *f3 {
		rows, err := report.Figure3(*inlineLimit)
		if err != nil {
			fatal(err)
		}
		out.Figure3 = rows
		fmt.Println(report.FormatFigure3(rows))
	}
	if *nos {
		rows, err := report.NullOrSame(*inlineLimit)
		if err != nil {
			fatal(err)
		}
		out.NullOrSame = rows
		fmt.Println(report.FormatNullOrSame(rows))
	}
	if *rearr {
		rows, err := report.Rearrangement(*inlineLimit)
		if err != nil {
			fatal(err)
		}
		out.Rearrange = rows
		fmt.Println(report.FormatRearrangement(rows))
	}
	if *interp {
		rows, err := report.Interprocedural()
		if err != nil {
			fatal(err)
		}
		out.Interprocedural = rows
		fmt.Println(report.FormatInterprocedural(rows))
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "satbbench: wrote %s\n", *jsonPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "satbbench:", err)
	os.Exit(1)
}
