// Command satbbench regenerates the paper's evaluation artifacts over the
// built-in workload suite: Table 1 (dynamic eliminations), Table 2 (jbb
// end-to-end barrier cost), Figure 2 (inline-limit sweep), Figure 3
// (compiled code size), and the §4.3 null-or-same measurements.
//
// Usage:
//
//	satbbench -all
//	satbbench -table1 -fig3
package main

import (
	"flag"
	"fmt"
	"os"

	"satbelim/internal/report"
)

func main() {
	all := flag.Bool("all", false, "run every experiment")
	t1 := flag.Bool("table1", false, "Table 1: dynamic barrier elimination")
	t2 := flag.Bool("table2", false, "Table 2: jbb end-to-end barrier cost")
	f2 := flag.Bool("fig2", false, "Figure 2: inline limit sweep")
	f3 := flag.Bool("fig3", false, "Figure 3: compiled code size")
	nos := flag.Bool("nullorsame", false, "§4.3 null-or-same measurements")
	rearr := flag.Bool("rearrange", false, "§4.3 array-rearrangement measurements")
	interp := flag.Bool("interprocedural", false, "escape-summary recovery at inline limit 0")
	inlineLimit := flag.Int("inline", report.DefaultInlineLimit, "inline limit for Table 1/2, Figure 3")
	flag.Parse()

	if *all {
		*t1, *t2, *f2, *f3, *nos, *rearr, *interp = true, true, true, true, true, true, true
	}
	if !*t1 && !*t2 && !*f2 && !*f3 && !*nos && !*rearr && !*interp {
		fmt.Fprintln(os.Stderr, "usage: satbbench [-all] [-table1] [-table2] [-fig2] [-fig3] [-nullorsame] [-rearrange] [-interprocedural]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	if *t1 {
		rows, err := report.Table1(*inlineLimit)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.FormatTable1(rows))
	}
	if *t2 {
		rows, err := report.Table2(*inlineLimit)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.FormatTable2(rows))
	}
	if *f2 {
		points, err := report.Figure2(nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.FormatFigure2(points))
	}
	if *f3 {
		rows, err := report.Figure3(*inlineLimit)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.FormatFigure3(rows))
	}
	if *nos {
		rows, err := report.NullOrSame(*inlineLimit)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.FormatNullOrSame(rows))
	}
	if *rearr {
		rows, err := report.Rearrangement(*inlineLimit)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.FormatRearrangement(rows))
	}
	if *interp {
		rows, err := report.Interprocedural()
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.FormatInterprocedural(rows))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "satbbench:", err)
	os.Exit(1)
}
