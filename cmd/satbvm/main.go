// Command satbvm compiles and runs a MiniJava program (or built-in
// workload) on the bytecode VM with a chosen barrier mode and collector,
// printing the program output and the barrier instrumentation summary.
//
// -trace FILE records the run (compile stages, per-method analysis, VM
// threads, GC cycles) as a Chrome trace_event JSON file; -metrics FILE
// writes the aggregated counters; -json FILE writes the run summary as a
// versioned report.Document.
//
// Usage:
//
//	satbvm [-inline N] [-mode A] [-barrier conditional] [-gc satb] file.mj
//	satbvm [-flags] -workload jbb
//	satbvm -workload jbb -gc satb -trace trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"satbelim/internal/cli"
	"satbelim/internal/core"
	"satbelim/internal/pipeline"
	"satbelim/internal/report"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
	"satbelim/internal/workloads"
)

func main() {
	inlineLimit := flag.Int("inline", 100, "inline limit in bytecode bytes")
	mode := flag.String("mode", "A", "analysis mode: B, F, or A")
	nullOrSame := flag.Bool("nullorsame", false, "enable the null-or-same extension")
	interproc := flag.Bool("interproc", false, "enable interprocedural method summaries")
	barrier := flag.String("barrier", "conditional", "barrier flavor: none, conditional, alwayslog, card, yuasa, dijkstra, hybrid")
	gcKind := flag.String("gc", "none", "collector: none, satb, inc")
	trigger := flag.Int64("gc-trigger", 200, "allocations between marking cycles")
	check := flag.Bool("check", false, "verify the SATB snapshot invariant every cycle")
	oracle := flag.Bool("oracle", false, "validate every elided store at runtime (soundness oracle)")
	deadline := flag.Duration("deadline", 0, "per-method analysis wall-clock budget (0 = unlimited)")
	sites := flag.Bool("sites", false, "print per-site statistics")
	workload := flag.String("workload", "", "run a built-in workload instead of a file")
	engine := flag.String("engine", "fused", "execution engine: fused (pre-decoded), switch (reference interpreter), or compiled (tiered closure-threaded)")
	tierThreshold := flag.Int64("tier-threshold", 0, "compiled engine: hot-method exec count before tier-up (0 = default 64)")
	noCache := flag.Bool("nocache", false, "bypass the content-addressed build cache")
	verbose := flag.Bool("v", false, "print engine and build-cache details")
	jsonPath := flag.String("json", "", "write the run summary as versioned JSON to this file")
	var ob cli.Obs
	ob.RegisterFlags()
	flag.Parse()

	var name, source string
	switch {
	case *workload != "":
		w, err := workloads.Get(*workload)
		if err != nil {
			fatal(err)
		}
		name, source = w.Name, w.Source
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		name = strings.TrimSuffix(filepath.Base(flag.Arg(0)), ".mj")
		source = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: satbvm [flags] file.mj | satbvm [flags] -workload NAME")
		flag.PrintDefaults()
		os.Exit(2)
	}

	am, err := core.ParseMode(*mode)
	if err != nil {
		fatal(err)
	}
	bm, err := satb.ParseBarrierMode(*barrier)
	if err != nil {
		fatal(err)
	}
	gk, err := vm.ParseGCKind(*gcKind)
	if err != nil {
		fatal(err)
	}
	eng, err := vm.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}

	ob.Start()

	b, err := pipeline.Compile(name, source, pipeline.Options{
		InlineLimit: *inlineLimit,
		Analysis: core.Options{
			Mode:            am,
			NullOrSame:      *nullOrSame,
			Interprocedural: *interproc,
			Deadline:        *deadline,
		},
		Runtime: vm.Config{
			Barrier:            bm,
			GC:                 gk,
			TriggerEveryAllocs: *trigger,
			CheckInvariant:     *check,
			CheckElisions:      *oracle,
			Engine:             eng,
			TierThreshold:      *tierThreshold,
		},
		NoCache: *noCache,
	})
	if err != nil {
		fatal(err)
	}
	if b.Report != nil {
		for _, m := range b.Report.Degraded() {
			fmt.Fprintf(os.Stderr, "satbvm: %s degraded to all-barriers (%s)\n",
				m.Method.QualifiedName(), m.Degraded)
		}
	}
	res, err := b.Exec()
	if err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Printf("engine: %s\n", res.Engine)
		if res.TierUps > 0 || res.TierDeopts > 0 {
			fmt.Printf("tier: %d methods compiled, %d deopts, %d segment executions\n",
				res.TierUps, res.TierDeopts, res.TierSegExecs)
		}
		cs := pipeline.DefaultCache.Stats()
		fmt.Printf("build cache: hit=%v (%d hits / %d misses, %d entries)\n",
			b.CacheHit, cs.Hits, cs.Misses, cs.Entries)
		fmt.Printf("compile: frontend %v, inline %v, verify %v, analysis %v\n",
			b.FrontendTime, b.InlineTime, b.VerifyTime, b.AnalysisTime)
	}
	if *oracle {
		fmt.Printf("oracle: %d elided stores validated\n", res.ElisionChecks)
	}

	fmt.Printf("output: %v\n", res.Output)
	fmt.Printf("instructions: %d, barrier cost: %d units, total cost: %d\n",
		res.Steps, res.Counters.Cost, res.TotalCost())
	if gk != vm.GCNone {
		fmt.Printf("gc: %d cycles, %d objects allocated, %d swept, final-pause work %d\n",
			res.Cycles, res.Allocated, res.Swept, res.FinalPauseWork)
	}
	fmt.Println(res.Counters.Summarize().String())
	if *sites {
		for _, s := range res.Counters.Sites() {
			fmt.Printf("  %v site execs=%d prenull=%d elide=%v\n", s.Kind, s.Execs, s.PreNull, s.Elide)
		}
	}

	if *jsonPath != "" {
		doc := report.NewDocument("satbvm")
		doc.InlineLimit = *inlineLimit
		doc.Run = report.NewRunSummary(name, res)
		doc.Compile = report.NewCompileSummary(b)
		if err := cli.WriteDocument(*jsonPath, doc); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "satbvm: wrote %s\n", *jsonPath)
	}
	if err := ob.Finish("satbvm"); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "satbvm:", err)
	os.Exit(1)
}
