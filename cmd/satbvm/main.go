// Command satbvm compiles and runs a MiniJava program (or built-in
// workload) on the bytecode VM with a chosen barrier mode and collector,
// printing the program output and the barrier instrumentation summary.
//
// Usage:
//
//	satbvm [-inline N] [-mode A] [-barrier conditional] [-gc satb] file.mj
//	satbvm [-flags] -workload jbb
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"satbelim/internal/core"
	"satbelim/internal/pipeline"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
	"satbelim/internal/workloads"
)

func main() {
	inlineLimit := flag.Int("inline", 100, "inline limit in bytecode bytes")
	mode := flag.String("mode", "A", "analysis mode: B, F, or A")
	nullOrSame := flag.Bool("nullorsame", false, "enable the null-or-same extension")
	barrier := flag.String("barrier", "conditional", "barrier mode: none, conditional, alwayslog, card")
	gcKind := flag.String("gc", "none", "collector: none, satb, inc")
	trigger := flag.Int64("gc-trigger", 200, "allocations between marking cycles")
	check := flag.Bool("check", false, "verify the SATB snapshot invariant every cycle")
	oracle := flag.Bool("oracle", false, "validate every elided store at runtime (soundness oracle)")
	deadline := flag.Duration("deadline", 0, "per-method analysis wall-clock budget (0 = unlimited)")
	sites := flag.Bool("sites", false, "print per-site statistics")
	workload := flag.String("workload", "", "run a built-in workload instead of a file")
	engine := flag.String("engine", "fused", "execution engine: fused (pre-decoded) or switch (reference interpreter)")
	noCache := flag.Bool("nocache", false, "bypass the content-addressed build cache")
	verbose := flag.Bool("v", false, "print engine and build-cache details")
	flag.Parse()

	var name, source string
	switch {
	case *workload != "":
		w, err := workloads.Get(*workload)
		if err != nil {
			fatal(err)
		}
		name, source = w.Name, w.Source
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		name = strings.TrimSuffix(filepath.Base(flag.Arg(0)), ".mj")
		source = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: satbvm [flags] file.mj | satbvm [flags] -workload NAME")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var am core.Mode
	switch strings.ToUpper(*mode) {
	case "B":
		am = core.ModeNone
	case "F":
		am = core.ModeField
	case "A":
		am = core.ModeFieldArray
	default:
		fatal(fmt.Errorf("unknown analysis mode %q", *mode))
	}

	var bm satb.BarrierMode
	switch *barrier {
	case "none":
		bm = satb.ModeNoBarrier
	case "conditional":
		bm = satb.ModeConditional
	case "alwayslog":
		bm = satb.ModeAlwaysLog
	case "card":
		bm = satb.ModeCardMarking
	default:
		fatal(fmt.Errorf("unknown barrier mode %q", *barrier))
	}

	var gk vm.GCKind
	switch *gcKind {
	case "none":
		gk = vm.GCNone
	case "satb":
		gk = vm.GCSATB
	case "inc":
		gk = vm.GCIncremental
	default:
		fatal(fmt.Errorf("unknown gc %q", *gcKind))
	}

	eng, err := vm.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}

	b, err := pipeline.Compile(name, source, pipeline.Options{
		InlineLimit: *inlineLimit,
		Analysis:    core.Options{Mode: am, NullOrSame: *nullOrSame, Deadline: *deadline},
		NoCache:     *noCache,
	})
	if err != nil {
		fatal(err)
	}
	if b.Report != nil {
		for _, m := range b.Report.Degraded() {
			fmt.Fprintf(os.Stderr, "satbvm: %s degraded to all-barriers (%s)\n",
				m.Method.QualifiedName(), m.Degraded)
		}
	}
	res, err := b.Run(vm.Config{
		Barrier:            bm,
		GC:                 gk,
		TriggerEveryAllocs: *trigger,
		CheckInvariant:     *check,
		CheckElisions:      *oracle,
		Engine:             eng,
	})
	if err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Printf("engine: %s\n", res.Engine)
		cs := pipeline.Stats()
		fmt.Printf("build cache: hit=%v (%d hits / %d misses, %d entries)\n",
			b.CacheHit, cs.Hits, cs.Misses, cs.Entries)
		fmt.Printf("compile: frontend %v, inline %v, verify %v, analysis %v\n",
			b.FrontendTime, b.InlineTime, b.VerifyTime, b.AnalysisTime)
	}
	if *oracle {
		fmt.Printf("oracle: %d elided stores validated\n", res.ElisionChecks)
	}

	fmt.Printf("output: %v\n", res.Output)
	fmt.Printf("instructions: %d, barrier cost: %d units, total cost: %d\n",
		res.Steps, res.Counters.Cost, res.TotalCost())
	if gk != vm.GCNone {
		fmt.Printf("gc: %d cycles, %d objects allocated, %d swept, final-pause work %d\n",
			res.Cycles, res.Allocated, res.Swept, res.FinalPauseWork)
	}
	fmt.Println(res.Counters.Summarize().String())
	if *sites {
		for _, s := range res.Counters.Sites() {
			fmt.Printf("  %v site execs=%d prenull=%d elide=%v\n", s.Kind, s.Execs, s.PreNull, s.Elide)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "satbvm:", err)
	os.Exit(1)
}
