// Command satbc is the MiniJava compiler driver: it compiles a source
// file (or a named built-in workload), runs the barrier-elision analyses,
// and prints the analysis report and optionally the annotated disassembly.
//
// -trace FILE records the compile (pipeline stages, per-method analysis
// spans) as a Chrome trace_event JSON file; -metrics FILE writes the
// aggregated counters; -json FILE writes the compile summary as a
// versioned report.Document.
//
// Usage:
//
//	satbc [-inline N] [-mode B|F|A] [-nullorsame] [-dis] file.mj
//	satbc [-flags] -workload jess
//	satbc -workload jess -trace trace.json -json compile.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"satbelim/internal/bytecode"
	"satbelim/internal/cli"
	"satbelim/internal/core"
	"satbelim/internal/pipeline"
	"satbelim/internal/report"
	"satbelim/internal/workloads"
)

func main() {
	inlineLimit := flag.Int("inline", 100, "inline limit in bytecode bytes (0 disables inlining)")
	mode := flag.String("mode", "A", "analysis mode: B (none), F (field), A (field+array)")
	nullOrSame := flag.Bool("nullorsame", false, "enable the §4.3 null-or-same extension")
	dis := flag.Bool("dis", false, "print annotated disassembly")
	workload := flag.String("workload", "", "compile a built-in workload instead of a file")
	jsonPath := flag.String("json", "", "write the compile summary as versioned JSON to this file")
	var ob cli.Obs
	ob.RegisterFlags()
	flag.Parse()

	var name, source string
	switch {
	case *workload != "":
		w, err := workloads.Get(*workload)
		if err != nil {
			fatal(err)
		}
		name, source = w.Name, w.Source
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		name = strings.TrimSuffix(filepath.Base(flag.Arg(0)), ".mj")
		source = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: satbc [flags] file.mj | satbc [flags] -workload NAME")
		flag.PrintDefaults()
		os.Exit(2)
	}

	m, err := core.ParseMode(*mode)
	if err != nil {
		fatal(err)
	}

	ob.Start()

	b, err := pipeline.Compile(name, source, pipeline.Options{
		InlineLimit: *inlineLimit,
		Analysis:    core.Options{Mode: m, NullOrSame: *nullOrSame},
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("compiled %s: %d bytecode bytes, %d call sites inlined (limit %d)\n",
		name, b.BytecodeBytes, b.InlinedCalls, *inlineLimit)
	fmt.Printf("compile time: frontend %v, inline %v, verify %v, analysis %v\n",
		b.FrontendTime, b.InlineTime, b.VerifyTime, b.AnalysisTime)
	fmt.Printf("modeled compiled code size: %d bytes\n", b.CompiledCodeSize())
	if b.Report != nil {
		fmt.Print(b.Report.String())
	}
	if *dis {
		fmt.Println()
		fmt.Print(bytecode.DisassembleProgram(b.Program))
	}

	if *jsonPath != "" {
		doc := report.NewDocument("satbc")
		doc.InlineLimit = *inlineLimit
		doc.Compile = report.NewCompileSummary(b)
		if err := cli.WriteDocument(*jsonPath, doc); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "satbc: wrote %s\n", *jsonPath)
	}
	if err := ob.Finish("satbc"); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "satbc:", err)
	os.Exit(1)
}
